package serve

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"sync"
	"sync/atomic"
)

// CacheKey computes the content-addressed key for an optimization
// request: a SHA-256 over the pipeline version, the resolved source
// language, the optimization recipe (level name plus whether checked
// mode is on) and the canonical ILOC text of the input program.
// Canonical means the parsed-and-reprinted form, so two textual
// spellings of the same ILOC address the same cache slot — but the
// language is a separate dimension: identical canonical ILOC arriving
// as "mf" and as "pl0" (or raw "iloc") occupies distinct slots, so a
// front-end bug in one language can never poison another's cached
// results.  Identical inputs hash identically across processes and
// runs; any change to the pass pipelines changes the version and so
// the key.
func CacheKey(canonicalILOC, lang, level, version string, checked bool) string {
	h := sha256.New()
	io.WriteString(h, version)
	h.Write([]byte{0})
	io.WriteString(h, lang)
	h.Write([]byte{0})
	io.WriteString(h, level)
	h.Write([]byte{0})
	if checked {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	h.Write([]byte{0})
	io.WriteString(h, canonicalILOC)
	return hex.EncodeToString(h.Sum(nil))
}

type cacheEntry struct {
	key string
	val any
}

type flight struct {
	done    chan struct{}
	waiters atomic.Int64
	val     any
	err     error
}

// Cache is a bounded LRU result cache with single-flight deduplication:
// concurrent Do calls for the same key run the computation exactly
// once, with every other caller waiting on (and sharing) that one
// result.  Errors are returned to all waiters but never cached.
type Cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	flights map[string]*flight
}

// NewCache builds a cache holding up to max results (minimum 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:     max,
		ll:      list.New(),
		entries: map[string]*list.Element{},
		flights: map[string]*flight{},
	}
}

// Do returns the value cached under key, or computes it.  hit reports a
// cache hit; shared reports that this caller piggybacked on another
// caller's in-flight computation of the same key.  If ctx expires while
// waiting on another caller, Do returns ctx.Err() (the computation
// itself keeps running and its result is still cached for others).
func (c *Cache) Do(ctx context.Context, key string, compute func() (any, error)) (val any, hit, shared bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		val = el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, true, false, nil
	}
	if fl, ok := c.flights[key]; ok {
		fl.waiters.Add(1)
		c.mu.Unlock()
		select {
		case <-fl.done:
			return fl.val, false, true, fl.err
		case <-ctx.Done():
			return nil, false, true, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[key] = fl
	c.mu.Unlock()

	fl.val, fl.err = compute()

	c.mu.Lock()
	delete(c.flights, key)
	if fl.err == nil {
		c.insert(key, fl.val)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.val, false, false, fl.err
}

// Put inserts a precomputed result (the disk-warming path), evicting
// as needed.  It does not disturb any in-flight computation of the same
// key.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	c.insert(key, val)
	c.mu.Unlock()
}

// FlightWaiters reports how many callers are currently waiting on an
// in-flight computation of key — observability for tests that need a
// deterministic single-flight rendezvous.
func (c *Cache) FlightWaiters(key string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fl, ok := c.flights[key]; ok {
		return fl.waiters.Load()
	}
	return 0
}

// Get peeks at the cache without computing or refreshing recency.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		return el.Value.(*cacheEntry).val, true
	}
	return nil, false
}

// Len reports the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// insert adds a result, evicting the least recently used entry when the
// cache is full.  Caller holds c.mu.
func (c *Cache) insert(key string, val any) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}
