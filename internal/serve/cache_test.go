package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/minift"
)

const keySrc = `
func driver(n: int): int {
    var s: int = 0
    for i = 1 to n {
        s = s + i * n
    }
    return s
}
`

// TestCacheKeyStability: identical inputs hash identically across
// independent computations; levels, checked mode, the pipeline
// version and the source language all separate keys.
func TestCacheKeyStability(t *testing.T) {
	version := core.PipelineVersion()
	canon := func() string {
		p, err := minift.Compile(keySrc)
		if err != nil {
			t.Fatal(err)
		}
		return p.String()
	}
	k1 := CacheKey(canon(), "mf", "reassociation", version, false)
	k2 := CacheKey(canon(), "mf", "reassociation", version, false)
	if k1 != k2 {
		t.Errorf("identical input produced distinct keys:\n%s\n%s", k1, k2)
	}
	if kOther := CacheKey(canon(), "mf", "baseline", version, false); kOther == k1 {
		t.Error("distinct levels share a key")
	}
	if kChecked := CacheKey(canon(), "mf", "reassociation", version, true); kChecked == k1 {
		t.Error("checked and unchecked mode share a key")
	}
	if kVer := CacheKey(canon(), "mf", "reassociation", "other-version", false); kVer == k1 {
		t.Error("distinct pipeline versions share a key")
	}
	if kLang := CacheKey(canon(), "pl0", "reassociation", version, false); kLang == k1 {
		t.Error("distinct source languages share a key")
	}
	if len(k1) != 64 {
		t.Errorf("key is not a hex SHA-256: %q", k1)
	}
}

// TestPipelineVersionStable: the fingerprint is deterministic within a
// process (and, being a pure function of the pass tables, across
// processes).
func TestPipelineVersionStable(t *testing.T) {
	if a, b := core.PipelineVersion(), core.PipelineVersion(); a != b {
		t.Errorf("PipelineVersion not stable: %q vs %q", a, b)
	}
}

// TestCacheSingleFlight: 100 concurrent Do calls for one key run the
// computation exactly once; everyone gets the same value.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(8)
	var computes atomic.Int64
	release := make(chan struct{})

	const callers = 100
	var wg sync.WaitGroup
	vals := make([]any, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], _, _, errs[i] = c.Do(context.Background(), "k", func() (any, error) {
				computes.Add(1)
				<-release // hold the flight open until all callers queue up
				return "result", nil
			})
		}(i)
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Errorf("computed %d times, want exactly 1", n)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if vals[i] != "result" {
			t.Errorf("caller %d got %v", i, vals[i])
		}
	}
	// A later call is a plain cache hit.
	v, hit, shared, err := c.Do(context.Background(), "k", func() (any, error) {
		t.Error("cache hit must not recompute")
		return nil, nil
	})
	if err != nil || !hit || shared || v != "result" {
		t.Errorf("hit=%v shared=%v v=%v err=%v", hit, shared, v, err)
	}
}

// TestCacheErrorNotCached: a failed computation is reported but not
// cached; the next call recomputes.
func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(8)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, _, _, err := c.Do(context.Background(), "k", func() (any, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("want boom, got %v", err)
		}
	}
	if calls != 2 {
		t.Errorf("errors must not be cached: %d compute calls, want 2", calls)
	}
}

// TestCacheLRUEviction: the cache holds at most max entries, evicting
// the least recently used.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	put := func(k string) {
		if _, _, _, err := c.Do(context.Background(), k, func() (any, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	put("a") // refresh a: b is now LRU
	put("c") // evicts b
	if c.Len() != 2 {
		t.Errorf("len=%d, want 2", c.Len())
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should be cached", k)
		}
	}
}

// TestPoolBounds: the pool runs at most `workers` jobs concurrently and
// sheds load once both workers are busy and the admission buffer is
// full.
func TestPoolBounds(t *testing.T) {
	const workers, queue = 2, 1
	p := NewPool(workers, queue)
	defer p.Close()

	var running, peak atomic.Int64
	block := make(chan struct{})
	started := make(chan struct{}, workers)
	job := func(ctx context.Context) {
		if r := running.Add(1); r > peak.Load() {
			peak.Store(r)
		}
		started <- struct{}{}
		<-block
		running.Add(-1)
	}

	var wg sync.WaitGroup
	// Occupy both workers.
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Do(context.Background(), job); err != nil {
				t.Errorf("worker job: %v", err)
			}
		}()
	}
	for i := 0; i < workers; i++ {
		<-started
	}
	// Fill the admission buffer (capacity workers+queue).
	buffered := workers + queue
	for i := 0; i < buffered; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Do(context.Background(), func(ctx context.Context) {}); err != nil {
				t.Errorf("buffered job: %v", err)
			}
		}()
	}
	waitDepth(t, p, int64(buffered))
	// One more must be shed, deterministically.
	if err := p.Do(context.Background(), func(ctx context.Context) {}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("want ErrQueueFull, got %v", err)
	}
	close(block)
	wg.Wait()
	if pk := peak.Load(); pk > workers {
		t.Errorf("peak concurrency %d, want <= %d", pk, workers)
	}
}

// waitDepth blocks until the pool's queue gauge reaches want.
func waitDepth(t *testing.T, p *Pool, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for p.QueueDepth() < want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth stuck at %d, want %d", p.QueueDepth(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolClosedRejects: after Close, Do fails fast with ErrPoolClosed.
func TestPoolClosedRejects(t *testing.T) {
	p := NewPool(1, 0)
	p.Close()
	err := p.Do(context.Background(), func(ctx context.Context) {})
	if !errors.Is(err, ErrPoolClosed) {
		t.Errorf("want ErrPoolClosed, got %v", err)
	}
}

// TestPoolSkipsExpired: a job whose context is already done when a
// worker picks it up never runs.
func TestPoolSkipsExpired(t *testing.T) {
	p := NewPool(1, 4)
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Do(context.Background(), func(ctx context.Context) { close(started); <-block })
	}()
	<-started // the only worker is now busy

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired when submitted
	ran := make(chan struct{}, 1)
	derr := p.Do(ctx, func(ctx context.Context) { ran <- struct{}{} })
	if !errors.Is(derr, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", derr)
	}
	close(block)
	wg.Wait()
	p.Close() // drain: the cancelled job must have been skipped
	select {
	case <-ran:
		t.Error("expired job ran anyway")
	default:
	}
}

func ExampleCacheKey() {
	k := CacheKey("program globalsize=0\n", "iloc", "baseline", "v1", false)
	fmt.Println(len(k))
	// Output: 64
}
