package serve

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// storedResult is the disk representation of one optimization result —
// exactly what the LRU caches minus the parsed program (which is
// re-derived from the ILOC text on demand).
type storedResult struct {
	ILOC      string   `json:"iloc"`
	StaticOps int      `json:"static_ops"`
	Diags     []string `json:"diags,omitempty"`
}

// diskMagic heads every entry file, followed by the hex SHA-256 of the
// payload; a reader that does not find magic+checksum+valid JSON treats
// the entry as absent (and deletes it), so torn writes, truncation and
// bit rot degrade to recomputation, never to a wrong answer.
const diskMagic = "epre-disk-v1"

// DiskStore is a persistent content-addressed result store: one file
// per cache key under a two-level fan-out directory
// (`dir/ab/cdef...`, first byte of the hex key as the shard), written
// atomically via rename from a temp file in the same directory.  It
// sits underneath the in-memory LRU so results survive process
// restarts; an in-memory index (rebuilt from a directory walk at open)
// tracks sizes and recency for the optional byte budget.
type DiskStore struct {
	mu     sync.Mutex
	dir    string
	budget int64 // max total bytes; 0 = unlimited
	fsync  bool
	total  int64
	ll     *list.List // front = most recently used
	index  map[string]*list.Element

	// onCorrupt, when set, is invoked each time Get drops an entry whose
	// file exists but fails validation (bad magic, checksum mismatch,
	// unparseable payload) — the server wires it to the disk_corrupt
	// counter.
	onCorrupt func()
}

type diskEntry struct {
	key  string
	size int64
}

// OpenDiskStore opens (creating if needed) a store rooted at dir with
// the given byte budget (0 = unlimited).  When fsync is set, entry
// files are synced before the atomic rename — slower, but entries
// survive power loss, not just process death.  Existing entries are
// indexed by modification time so the budget and warming see the same
// recency the previous process left behind; unreadable entries are
// skipped (and deleted lazily on first Get).
func OpenDiskStore(dir string, budget int64, fsync bool) (*DiskStore, error) {
	if dir == "" {
		return nil, errors.New("diskstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &DiskStore{
		dir:    dir,
		budget: budget,
		fsync:  fsync,
		ll:     list.New(),
		index:  map[string]*list.Element{},
	}
	type found struct {
		key   string
		size  int64
		mtime int64
	}
	var entries []found
	shards, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			key := sh.Name() + f.Name()
			if f.IsDir() || len(key) != 64 || !isHex(key) {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			entries = append(entries, found{key: key, size: info.Size(), mtime: info.ModTime().UnixNano()})
		}
	}
	// Oldest first, so pushing each to the front leaves the newest
	// entries as the most recently used.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].mtime != entries[j].mtime {
			return entries[i].mtime < entries[j].mtime
		}
		return entries[i].key < entries[j].key
	})
	for _, e := range entries {
		d.index[e.key] = d.ll.PushFront(&diskEntry{key: e.key, size: e.size})
		d.total += e.size
	}
	d.evictLocked()
	return d, nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

func (d *DiskStore) path(key string) string {
	return filepath.Join(d.dir, key[:2], key[2:])
}

// Get returns the stored result for key, refreshing its recency.  A
// missing, truncated or corrupt entry is a miss; corrupt files are
// deleted so the slot is rewritten cleanly after recomputation.
func (d *DiskStore) Get(key string) (*storedResult, bool) {
	if d == nil || len(key) != 64 {
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	el, ok := d.index[key]
	if !ok {
		return nil, false
	}
	res, err := readEntry(d.path(key))
	if err != nil {
		// Corrupt or vanished: drop it from the index (and disk) so the
		// caller recomputes and Put rewrites a clean entry.
		if !errors.Is(err, os.ErrNotExist) && d.onCorrupt != nil {
			d.onCorrupt()
		}
		d.removeLocked(el)
		return nil, false
	}
	d.ll.MoveToFront(el)
	return res, true
}

// Put stores the result under key via write-to-temp + atomic rename, so
// concurrent writers of the same key are safe (last rename wins, and
// readers only ever observe complete files).  Inserting may evict the
// least recently used entries to honor the byte budget.
func (d *DiskStore) Put(key string, res *storedResult) error {
	if d == nil || len(key) != 64 {
		return errors.New("diskstore: bad key")
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(payload)
	var buf bytes.Buffer
	buf.Grow(len(diskMagic) + 1 + 64 + 1 + len(payload))
	fmt.Fprintf(&buf, "%s %s\n", diskMagic, hex.EncodeToString(sum[:]))
	buf.Write(payload)

	d.mu.Lock()
	defer d.mu.Unlock()
	shard := filepath.Join(d.dir, key[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(shard, "."+key[2:]+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(buf.Bytes())
	if werr == nil && d.fsync {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), d.path(key))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	size := int64(buf.Len())
	if el, ok := d.index[key]; ok {
		e := el.Value.(*diskEntry)
		d.total += size - e.size
		e.size = size
		d.ll.MoveToFront(el)
	} else {
		d.index[key] = d.ll.PushFront(&diskEntry{key: key, size: size})
		d.total += size
	}
	d.evictLocked()
	return nil
}

// RecentKeys lists up to limit keys, most recently used first — the hot
// set the server warms into the in-memory LRU at startup.
func (d *DiskStore) RecentKeys(limit int) []string {
	if d == nil || limit <= 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	keys := make([]string, 0, limit)
	for el := d.ll.Front(); el != nil && len(keys) < limit; el = el.Next() {
		keys = append(keys, el.Value.(*diskEntry).key)
	}
	return keys
}

// Len reports the number of indexed entries; Bytes their total size.
func (d *DiskStore) Len() int {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ll.Len()
}

func (d *DiskStore) Bytes() int64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.total
}

// evictLocked removes least-recently-used entries until the byte budget
// is satisfied.  Caller holds d.mu.
func (d *DiskStore) evictLocked() {
	if d.budget <= 0 {
		return
	}
	for d.total > d.budget && d.ll.Len() > 0 {
		d.removeLocked(d.ll.Back())
	}
}

// removeLocked drops one entry from the index and the filesystem.
// Caller holds d.mu.
func (d *DiskStore) removeLocked(el *list.Element) {
	e := el.Value.(*diskEntry)
	d.ll.Remove(el)
	delete(d.index, e.key)
	d.total -= e.size
	os.Remove(d.path(e.key))
}

// readEntry loads and verifies one entry file.
func readEntry(path string) (*storedResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, errors.New("diskstore: missing header")
	}
	header, payload := data[:nl], data[nl+1:]
	fields := bytes.Fields(header)
	if len(fields) != 2 || string(fields[0]) != diskMagic {
		return nil, errors.New("diskstore: bad magic")
	}
	sum := sha256.Sum256(payload)
	if string(fields[1]) != hex.EncodeToString(sum[:]) {
		return nil, errors.New("diskstore: checksum mismatch")
	}
	var res storedResult
	if err := json.Unmarshal(payload, &res); err != nil {
		return nil, fmt.Errorf("diskstore: bad payload: %w", err)
	}
	return &res, nil
}
