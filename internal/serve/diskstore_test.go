package serve

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func diskKey(i int) string {
	return CacheKey(fmt.Sprintf("program %d", i), "iloc", "reassoc", "test-version", false)
}

// TestDiskStoreRoundTrip: Put then Get returns the same payload, Len and
// Bytes track the store, and a fresh open over the same directory sees
// everything (restart survival at the store level).
func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskStore(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	want := &storedResult{ILOC: "program\nfunc f\n", StaticOps: 7, Diags: []string{"note"}}
	key := diskKey(1)
	if err := d.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get(key)
	if !ok || got.ILOC != want.ILOC || got.StaticOps != want.StaticOps || len(got.Diags) != 1 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if d.Len() != 1 || d.Bytes() <= 0 {
		t.Errorf("Len=%d Bytes=%d", d.Len(), d.Bytes())
	}

	// Reopen: the entry must still be there with the same bytes.
	d2, err := OpenDiskStore(dir, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	got2, ok := d2.Get(key)
	if !ok || got2.ILOC != want.ILOC {
		t.Fatalf("after reopen: Get = %+v, %v", got2, ok)
	}
	if keys := d2.RecentKeys(10); len(keys) != 1 || keys[0] != key {
		t.Errorf("RecentKeys = %v", keys)
	}
}

// TestDiskStoreCorruption: a truncated or bit-flipped entry is a miss,
// fires the corruption hook, is deleted from disk, and a rewrite heals
// the slot.
func TestDiskStoreCorruption(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskStore(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	var corrupt int
	d.onCorrupt = func() { corrupt++ }

	cases := []func(path string) error{
		func(p string) error { return os.WriteFile(p, []byte("garbage, no header"), 0o644) },
		func(p string) error { // flip a payload byte: checksum mismatch
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[len(data)-2] ^= 0xff
			return os.WriteFile(p, data, 0o644)
		},
		func(p string) error { // truncate mid-payload
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, data[:len(data)-3], 0o644)
		},
	}
	for i, mangle := range cases {
		key := diskKey(100 + i)
		if err := d.Put(key, &storedResult{ILOC: "program\n", StaticOps: 1}); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, key[:2], key[2:])
		if err := mangle(path); err != nil {
			t.Fatal(err)
		}
		if _, ok := d.Get(key); ok {
			t.Errorf("case %d: corrupt entry served as a hit", i)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("case %d: corrupt file not deleted (err=%v)", i, err)
		}
		// The slot heals: recompute-and-rewrite works.
		if err := d.Put(key, &storedResult{ILOC: "program\n", StaticOps: 1}); err != nil {
			t.Fatal(err)
		}
		if _, ok := d.Get(key); !ok {
			t.Errorf("case %d: rewrite after corruption missed", i)
		}
	}
	if corrupt != len(cases) {
		t.Errorf("onCorrupt fired %d times, want %d", corrupt, len(cases))
	}

	// A file that vanished underneath the index is a quiet miss, not a
	// corruption.
	key := diskKey(200)
	d.Put(key, &storedResult{ILOC: "program\n"})
	os.Remove(filepath.Join(dir, key[:2], key[2:]))
	if _, ok := d.Get(key); ok {
		t.Error("vanished entry served as a hit")
	}
	if corrupt != len(cases) {
		t.Errorf("vanished file counted as corruption (count %d)", corrupt)
	}
}

// TestDiskStoreConcurrentWriters: many goroutines writing and reading
// the same key never observe a torn entry (atomic rename), and the final
// state is one valid entry.
func TestDiskStoreConcurrentWriters(t *testing.T) {
	d, err := OpenDiskStore(t.TempDir(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	key := diskKey(7)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := d.Put(key, &storedResult{ILOC: "program\nfunc f\n", StaticOps: 42}); err != nil {
					t.Errorf("writer %d: %v", i, err)
					return
				}
				if res, ok := d.Get(key); ok && res.StaticOps != 42 {
					t.Errorf("reader %d observed torn entry %+v", i, res)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	res, ok := d.Get(key)
	if !ok || res.StaticOps != 42 {
		t.Fatalf("final state: %+v, %v", res, ok)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
}

// TestDiskStoreEviction: the byte budget is honored — least recently
// used entries (files included) disappear, recently used ones survive.
func TestDiskStoreEviction(t *testing.T) {
	dir := t.TempDir()
	big := &storedResult{ILOC: string(make([]byte, 1024)), StaticOps: 1}
	probe, err := OpenDiskStore(t.TempDir(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Put(diskKey(0), big); err != nil {
		t.Fatal(err)
	}
	entrySize := probe.Bytes()

	budget := entrySize*3 + entrySize/2 // room for 3 entries
	d, err := OpenDiskStore(dir, budget, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Put(diskKey(i), big); err != nil {
			t.Fatal(err)
		}
		// Keep entry 0 hot so eviction targets the middle entries.
		if _, ok := d.Get(diskKey(0)); !ok {
			t.Fatalf("hot entry evicted after put %d", i)
		}
	}
	if d.Bytes() > budget {
		t.Errorf("Bytes = %d exceeds budget %d", d.Bytes(), budget)
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d, want 3", d.Len())
	}
	if _, ok := d.Get(diskKey(0)); !ok {
		t.Error("most recently used entry was evicted")
	}
	if _, ok := d.Get(diskKey(5)); ok {
		t.Error("cold entry survived the budget")
	}
	// Evicted entries are gone from disk too, not just the index.
	var files int
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			files++
		}
		return nil
	})
	if files != 3 {
		t.Errorf("%d files on disk, want 3", files)
	}
}

// TestServerDiskRestart: the acceptance path — a server writes results
// through to its cache directory; a second server over the same
// directory warms them into its LRU, so the first pass of repeat
// traffic after a "restart" is pure hits, byte-identical to the
// original responses, with zero recomputation.
func TestServerDiskRestart(t *testing.T) {
	dir := t.TempDir()
	srcs := make([]string, 4)
	for i := range srcs {
		srcs[i] = fmt.Sprintf(`
func driver(n: int): int {
    var s: int = %d
    for i = 1 to n {
        s = s + i * n + %d
    }
    return s
}
`, i, i*3)
	}

	s1 := newServer(t, Config{CacheDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	first := make([]OptimizeResponse, len(srcs))
	for i, src := range srcs {
		code, out, raw := postOptimize(t, ts1, OptimizeRequest{Source: src, Level: "dist"})
		if code != 200 {
			t.Fatalf("seed request %d: %d %s", i, code, raw)
		}
		first[i] = out
	}
	ts1.Close()
	if w := s1.Metrics().Get("disk_writes"); w != int64(len(srcs)) {
		t.Fatalf("disk_writes = %d, want %d", w, len(srcs))
	}

	// "Restart": fresh server, same directory.
	s2 := newServer(t, Config{CacheDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if warmed := s2.Metrics().Get("disk_warmed"); warmed != int64(len(srcs)) {
		t.Errorf("disk_warmed = %d, want %d", warmed, len(srcs))
	}
	for i, src := range srcs {
		code, out, raw := postOptimize(t, ts2, OptimizeRequest{Source: src, Level: "dist",
			Run: &RunSpec{Fn: "driver", Args: []string{"9"}}})
		if code != 200 {
			t.Fatalf("warm request %d: %d %s", i, code, raw)
		}
		if !out.Cached {
			t.Errorf("warm request %d missed the warmed LRU", i)
		}
		if out.Key != first[i].Key || out.ILOC != first[i].ILOC || out.StaticOps != first[i].StaticOps {
			t.Errorf("warm request %d differs from the original response", i)
		}
		// The warmed entry parses lazily and still runs.
		if out.Run == nil || out.Run.DynamicOps <= 0 {
			t.Errorf("warm request %d: run failed: %+v", i, out.Run)
		}
	}
	if misses := s2.Metrics().Get("cache_misses"); misses != 0 {
		t.Errorf("restarted server recomputed %d results", misses)
	}
}

// TestServerDiskHitPath: with a cold LRU but a populated disk (more
// entries than the LRU warms), a miss is answered by the disk store
// without recomputation and reported as disk_cached.
func TestServerDiskHitPath(t *testing.T) {
	dir := t.TempDir()
	s1 := newServer(t, Config{CacheDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	code, orig, raw := postOptimize(t, ts1, OptimizeRequest{Source: serveSrc, Level: "dist"})
	if code != 200 {
		t.Fatalf("%d %s", code, raw)
	}
	ts1.Close()

	// CacheSize 1 plus a dummy entry pushed more recently than ours
	// keeps our key out of the warmed set, forcing the disk path.
	d, err := OpenDiskStore(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(diskKey(9), &storedResult{ILOC: "x"}); err != nil {
		t.Fatal(err)
	}

	s2 := newServer(t, Config{CacheDir: dir, CacheSize: 1})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	code2, out, raw2 := postOptimize(t, ts2, OptimizeRequest{Source: serveSrc, Level: "dist"})
	if code2 != 200 {
		t.Fatalf("%d %s", code2, raw2)
	}
	if !out.DiskCached {
		t.Error("response not marked disk_cached")
	}
	if out.ILOC != orig.ILOC || out.Key != orig.Key {
		t.Error("disk-path response differs from the original")
	}
	m := s2.Metrics()
	if m.Get("disk_hits") != 1 {
		t.Errorf("disk_hits = %d, want 1", m.Get("disk_hits"))
	}
	if m.Get("cache_misses") != 0 {
		t.Errorf("cache_misses = %d, want 0 (no recompute)", m.Get("cache_misses"))
	}
}

// TestServerDiskCorruptRecompute: a corrupted disk entry bumps
// disk_corrupt, the request recomputes, and the slot is rewritten.
func TestServerDiskCorruptRecompute(t *testing.T) {
	dir := t.TempDir()
	s1 := newServer(t, Config{CacheDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	code, orig, raw := postOptimize(t, ts1, OptimizeRequest{Source: serveSrc, Level: "dist"})
	if code != 200 {
		t.Fatalf("%d %s", code, raw)
	}
	ts1.Close()

	path := filepath.Join(dir, orig.Key[:2], orig.Key[2:])
	if err := os.WriteFile(path, []byte("epre-disk-v1 deadbeef\n{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newServer(t, Config{CacheDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	m := s2.Metrics()
	// Warming already tried the entry and dropped it.
	if m.Get("disk_corrupt") < 1 {
		t.Errorf("disk_corrupt = %d, want >= 1", m.Get("disk_corrupt"))
	}
	code2, out, raw2 := postOptimize(t, ts2, OptimizeRequest{Source: serveSrc, Level: "dist"})
	if code2 != 200 {
		t.Fatalf("%d %s", code2, raw2)
	}
	if out.ILOC != orig.ILOC {
		t.Error("recomputed result differs from the original")
	}
	if m.Get("cache_misses") != 1 {
		t.Errorf("cache_misses = %d, want 1 (recompute)", m.Get("cache_misses"))
	}
	if m.Get("disk_writes") != 1 {
		t.Errorf("disk_writes = %d, want 1 (slot rewritten)", m.Get("disk_writes"))
	}
	// And the rewritten entry is valid again.
	if _, err := readEntry(path); err != nil {
		t.Errorf("rewritten entry unreadable: %v", err)
	}
}
