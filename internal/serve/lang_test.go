package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const pl0ServeSrc = `
procedure triple(n);
var i, s;
begin
	s := 0;
	i := 1;
	while i <= n do begin
		s := s + 3;
		i := i + 1
	end;
	triple := s
end;
write triple(5).
`

// TestPL0Optimize: a PL/0 source served end-to-end — detected, compiled,
// optimized, interpreted — with the resolved language reported.
func TestPL0Optimize(t *testing.T) {
	s := newServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := OptimizeRequest{
		Source: pl0ServeSrc,
		Level:  "reassoc",
		Run:    &RunSpec{Fn: "triple", Args: []string{"7"}},
	}
	code, out, raw := postOptimize(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if out.Lang != "pl0" {
		t.Errorf("resolved lang = %q, want pl0", out.Lang)
	}
	if out.Run == nil || out.Run.Result != "21" {
		t.Errorf("run result = %+v, want 21", out.Run)
	}
	if !strings.Contains(out.ILOC, "func triple(") {
		t.Errorf("optimized ILOC lacks the pl0 procedure:\n%s", out.ILOC)
	}

	// Forcing the language explicitly lands on the same cache slot as
	// detection.
	code2, out2, _ := postOptimize(t, ts, OptimizeRequest{
		Source: pl0ServeSrc, Lang: "pl0", Level: "reassoc",
		Run: &RunSpec{Fn: "triple", Args: []string{"7"}},
	})
	if code2 != http.StatusOK || out2.Key != out.Key || !out2.Cached {
		t.Errorf("explicit lang=pl0: status %d key match=%v cached=%v",
			code2, out2.Key == out.Key, out2.Cached)
	}
}

// TestLangCacheKeySeparation: byte-identical canonical ILOC arriving
// under different resolved languages must not collide in the cache.
func TestLangCacheKeySeparation(t *testing.T) {
	const canon = "program globalsize=0\n"
	version := "test-version"
	kMF := CacheKey(canon, "mf", "reassociation", version, false)
	kPL0 := CacheKey(canon, "pl0", "reassociation", version, false)
	kILOC := CacheKey(canon, "iloc", "reassociation", version, false)
	if kMF == kPL0 || kMF == kILOC || kPL0 == kILOC {
		t.Fatalf("languages share cache keys: mf=%s pl0=%s iloc=%s", kMF, kPL0, kILOC)
	}
}

// TestLangRejected: an unknown lang value is the client's fault.
func TestLangRejected(t *testing.T) {
	s := newServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _, raw := postOptimize(t, ts, OptimizeRequest{Source: pl0ServeSrc, Lang: "cobol"})
	if code != http.StatusBadRequest {
		t.Errorf("lang=cobol: status %d (%s), want 400", code, raw)
	}
	// Forcing the wrong language fails in that language's parser.
	code2, _, _ := postOptimize(t, ts, OptimizeRequest{Source: pl0ServeSrc, Lang: "mf"})
	if code2 != http.StatusBadRequest {
		t.Errorf("pl0 source as mf: status %d, want 400", code2)
	}
}

// TestBatchLangDefaults: a batch-level lang default is inherited by
// items that leave it empty, and overridable per item.
func TestBatchLangDefaults(t *testing.T) {
	s := newServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := BatchRequest{
		Defaults: &BatchDefaults{Lang: "pl0", Level: "partial"},
		Items: []OptimizeRequest{
			{Source: pl0ServeSrc},                     // inherits lang=pl0
			{Source: serveSrc, Lang: "mf"},            // overrides
			{Source: "write 1.", Level: "baseline"},   // inherits lang, keeps level
			{Source: serveSrc /* mf as pl0: fails */}, // inherited lang mismatches
		},
	}
	code, out, raw := postBatch(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %s", code, raw)
	}
	if len(out.Items) != 4 {
		t.Fatalf("got %d items", len(out.Items))
	}
	if it := out.Items[0]; it.Error != "" || it.Lang != "pl0" || it.Level != "partial" {
		t.Errorf("item 0: %+v", it)
	}
	if it := out.Items[1]; it.Error != "" || it.Lang != "mf" || it.Level != "partial" {
		t.Errorf("item 1: %+v", it)
	}
	if it := out.Items[2]; it.Error != "" || it.Lang != "pl0" || it.Level != "baseline" {
		t.Errorf("item 2: %+v", it)
	}
	if it := out.Items[3]; it.Error == "" || it.Status != http.StatusBadRequest {
		t.Errorf("item 3 should fail as a 400: %+v", it)
	}
}
