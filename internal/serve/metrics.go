package serve

import (
	"expvar"
	"net/http"

	"repro/internal/core"
)

// Metrics is the optimization service's observability surface: request
// and cache counters, per-pass cumulative wall time, and live gauges
// for queue depth and in-flight requests.  All counters are safe for
// concurrent update.  Each Server owns its own Metrics (nothing is
// registered in the process-global expvar namespace, so tests can run
// many servers side by side); the server exposes it at /debug/vars in
// the standard expvar JSON shape.
type Metrics struct {
	requests    expvar.Int // optimize requests received
	cacheHits   expvar.Int // served straight from the in-memory result cache
	cacheMisses expvar.Int // optimizations actually performed
	shared      expvar.Int // requests coalesced onto another's in-flight computation
	errors      expvar.Int // requests that failed (bad input, pass error)
	timeouts    expvar.Int // requests that hit their deadline
	rejected    expvar.Int // requests shed because the queue was full
	inFlight    expvar.Int // requests currently being handled

	batchRequests expvar.Int // POST /optimize/batch requests received
	batchItems    expvar.Int // items carried by those batch requests

	diskHits    expvar.Int // misses answered by the on-disk store without recompute
	diskWrites  expvar.Int // results persisted to the on-disk store
	diskCorrupt expvar.Int // on-disk entries rejected (bad checksum/format) and dropped
	diskWarmed  expvar.Int // entries pre-loaded from disk into the LRU at startup

	peerForwards      expvar.Int // requests forwarded to their ring owner
	peerForwardErrors expvar.Int // forwards that failed (request then served locally)
	passNanos         expvar.Map // pass name -> cumulative wall time, ns
	passCount         expvar.Map // pass name -> applications
	passChanged       expvar.Map // pass name -> applications that changed the function
	analysisMap       expvar.Map // analysis kind -> cache rebuilds during passes
	top               expvar.Map // the /debug/vars document
}

// NewMetrics builds an unpublished metrics set; queueDepth (may be nil)
// is polled for the queue_depth gauge.
func NewMetrics(queueDepth func() int64) *Metrics {
	m := &Metrics{}
	m.passNanos.Init()
	m.passCount.Init()
	m.passChanged.Init()
	m.analysisMap.Init()
	m.top.Init()
	m.top.Set("requests", &m.requests)
	m.top.Set("cache_hits", &m.cacheHits)
	m.top.Set("cache_misses", &m.cacheMisses)
	m.top.Set("singleflight_shared", &m.shared)
	m.top.Set("errors", &m.errors)
	m.top.Set("timeouts", &m.timeouts)
	m.top.Set("rejected", &m.rejected)
	m.top.Set("in_flight", &m.inFlight)
	m.top.Set("batch_requests", &m.batchRequests)
	m.top.Set("batch_items", &m.batchItems)
	m.top.Set("disk_hits", &m.diskHits)
	m.top.Set("disk_writes", &m.diskWrites)
	m.top.Set("disk_corrupt", &m.diskCorrupt)
	m.top.Set("disk_warmed", &m.diskWarmed)
	m.top.Set("peer_forwards", &m.peerForwards)
	m.top.Set("peer_forward_errors", &m.peerForwardErrors)
	m.top.Set("pass_nanos", &m.passNanos)
	m.top.Set("pass_count", &m.passCount)
	m.top.Set("pass_changed", &m.passChanged)
	m.top.Set("analysis_builds", &m.analysisMap)
	if queueDepth != nil {
		m.top.Set("queue_depth", expvar.Func(func() any { return queueDepth() }))
	}
	return m
}

// ObservePass records one pass application; it is the core
// OptimizeOptions.OnPass hook and may be called concurrently.
func (m *Metrics) ObservePass(info core.PassInfo) {
	m.passNanos.Add(info.Pass, info.Duration.Nanoseconds())
	m.passCount.Add(info.Pass, 1)
	if info.Changed {
		m.passChanged.Add(info.Pass, 1)
	}
	if b := info.Builds; b.Total() > 0 {
		if b.Dom > 0 {
			m.analysisMap.Add("dom", int64(b.Dom))
		}
		if b.RPO > 0 {
			m.analysisMap.Add("rpo", int64(b.RPO))
		}
		if b.Loops > 0 {
			m.analysisMap.Add("loops", int64(b.Loops))
		}
		if b.Liveness > 0 {
			m.analysisMap.Add("liveness", int64(b.Liveness))
		}
	}
}

// Get returns a named counter's current value, for tests and the bench
// harness.
func (m *Metrics) Get(name string) int64 {
	if v, ok := m.top.Get(name).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// ServeHTTP renders the metrics as an expvar-style JSON document.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write([]byte(m.top.String()))
	w.Write([]byte("\n"))
}
