package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// forwardHeader marks a request that has already been forwarded once by
// a peer.  A server receiving it always serves locally, whatever its
// own ring says — the loop guard that terminates forwarding even when
// two peers (with, say, momentarily different peer lists) disagree
// about who owns a key.  The value is the forwarding peer's identity,
// for logs and tests.
const forwardHeader = "X-Epre-Forwarded-By"

// servedByHeader reports which peer actually computed/cached the
// response that a forwarding peer relayed.
const servedByHeader = "X-Epre-Served-By"

// PeerStatus is one peer's health as seen from this server — surfaced
// on /healthz.
type PeerStatus struct {
	URL string `json:"url"`
	// Reachable is true once the last contact (forward or probe)
	// succeeded; false after a failure or before any contact.
	Reachable bool `json:"reachable"`
	// Contacted distinguishes "never talked to it" from "unreachable".
	Contacted bool   `json:"contacted"`
	LastError string `json:"last_error,omitempty"`
	// Forwards / ForwardErrors count forwarding attempts to this peer.
	Forwards      int64 `json:"forwards"`
	ForwardErrors int64 `json:"forward_errors"`
}

type peerState struct {
	status PeerStatus
}

// peerSet tracks the other members of the ring and carries forwarded
// requests to them.
type peerSet struct {
	self   string
	client *http.Client

	mu    sync.Mutex
	peers map[string]*peerState
}

func newPeerSet(self string, urls []string) *peerSet {
	ps := &peerSet{
		self: self,
		// Forwarded requests already run under the caller's deadline via
		// ctx; the transport timeout is a backstop against a peer that
		// accepts connections but never answers headers.
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost:   16,
			ResponseHeaderTimeout: 30 * time.Second,
		}},
		peers: map[string]*peerState{},
	}
	for _, u := range urls {
		if u == "" || u == self {
			continue
		}
		if _, ok := ps.peers[u]; !ok {
			ps.peers[u] = &peerState{status: PeerStatus{URL: u}}
		}
	}
	return ps
}

// forward relays body to owner's path (e.g. "/optimize"), marking it
// with the loop-guard header, and returns the owner's verbatim status
// and response body.  Transport-level failures (dial, timeout) are
// errors — the caller falls back to serving locally; an HTTP-level
// response of any status is a success for forwarding purposes (the
// owner answered; its 4xx/5xx is relayed as-is).
func (ps *peerSet) forward(ctx context.Context, owner, path string, body []byte) (int, http.Header, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+path, bytes.NewReader(body))
	if err != nil {
		ps.record(owner, true, err)
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardHeader, ps.self)
	resp, err := ps.client.Do(req)
	if err != nil {
		ps.record(owner, true, err)
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		ps.record(owner, true, err)
		return 0, nil, nil, err
	}
	ps.record(owner, true, nil)
	return resp.StatusCode, resp.Header, data, nil
}

// probe checks one peer's liveness via GET /healthz.
func (ps *peerSet) probe(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		ps.record(url, false, err)
		return err
	}
	resp, err := ps.client.Do(req)
	if err != nil {
		ps.record(url, false, err)
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err = fmt.Errorf("healthz status %d", resp.StatusCode)
		ps.record(url, false, err)
		return err
	}
	ps.record(url, false, nil)
	return nil
}

// probeAll probes every peer concurrently within the context deadline.
func (ps *peerSet) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, url := range ps.urls() {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			ps.probe(ctx, u)
		}(url)
	}
	wg.Wait()
}

func (ps *peerSet) urls() []string {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]string, 0, len(ps.peers))
	for u := range ps.peers {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

func (ps *peerSet) record(url string, wasForward bool, err error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	st, ok := ps.peers[url]
	if !ok {
		st = &peerState{status: PeerStatus{URL: url}}
		ps.peers[url] = st
	}
	st.status.Contacted = true
	if wasForward {
		st.status.Forwards++
		if err != nil {
			st.status.ForwardErrors++
		}
	}
	if err != nil {
		st.status.Reachable = false
		st.status.LastError = err.Error()
	} else {
		st.status.Reachable = true
		st.status.LastError = ""
	}
}

// statuses snapshots every peer's health, sorted by URL.
func (ps *peerSet) statuses() []PeerStatus {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]PeerStatus, 0, len(ps.peers))
	for _, st := range ps.peers {
		out = append(out, st.status)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
