package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Pool errors.
var (
	// ErrQueueFull is returned by Do when the admission queue is at
	// capacity; callers should shed the request (HTTP 503).
	ErrQueueFull = errors.New("serve: worker queue full")
	// ErrPoolClosed is returned by Do after Close.
	ErrPoolClosed = errors.New("serve: pool closed")
)

type poolJob struct {
	ctx  context.Context
	fn   func(ctx context.Context)
	done chan struct{}
}

// Pool is a bounded worker pool with a bounded admission queue: at most
// `workers` jobs run concurrently, and the admission buffer holds
// workers+queue more (sized so a request is never shed while a worker
// sits idle).  A job whose context expires while queued is dropped
// without running.  Close drains gracefully: no new work is admitted,
// everything already queued runs to completion.
type Pool struct {
	mu      sync.RWMutex
	closed  bool
	jobs    chan poolJob
	quit    chan struct{}
	wg      sync.WaitGroup
	senders sync.WaitGroup
	queued  atomic.Int64
}

// NewPool starts a pool with the given worker and queue bounds
// (minimums of 1 and 0 are enforced).
func NewPool(workers, queue int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{jobs: make(chan poolJob, workers+queue), quit: make(chan struct{})}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.queued.Add(-1)
		if j.ctx.Err() == nil {
			j.fn(j.ctx)
		}
		close(j.done)
	}
}

// Do submits fn and waits for it to finish.  It returns ErrQueueFull
// immediately when the queue is at capacity, ErrPoolClosed after Close,
// and ctx.Err() if the context expires before fn completes (fn itself
// is expected to watch ctx and return early; if it is still queued it
// will be skipped).
func (p *Pool) Do(ctx context.Context, fn func(ctx context.Context)) error {
	j := poolJob{ctx: ctx, fn: fn, done: make(chan struct{})}

	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrPoolClosed
	}
	p.queued.Add(1)
	select {
	case p.jobs <- j:
		p.mu.RUnlock()
	default:
		p.queued.Add(-1)
		p.mu.RUnlock()
		return ErrQueueFull
	}

	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// DoWait submits fn like Do, but blocks for a queue slot instead of
// shedding with ErrQueueFull — the admission policy for work that has
// already been admitted once at a coarser granularity (each item of an
// accepted batch request).  It still returns ErrPoolClosed after Close
// and ctx.Err() if the context expires while waiting for a slot or for
// fn to complete.
func (p *Pool) DoWait(ctx context.Context, fn func(ctx context.Context)) error {
	j := poolJob{ctx: ctx, fn: fn, done: make(chan struct{})}

	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrPoolClosed
	}
	// Registering as a sender while holding the read lock means Close
	// (which takes the write lock first) always sees us in the senders
	// group before it closes the jobs channel — a blocked DoWait wakes
	// on quit, never sends on a closed channel.
	p.senders.Add(1)
	p.mu.RUnlock()
	defer p.senders.Done()

	p.queued.Add(1)
	select {
	case p.jobs <- j:
	case <-p.quit:
		p.queued.Add(-1)
		return ErrPoolClosed
	case <-ctx.Done():
		p.queued.Add(-1)
		return ctx.Err()
	}
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// QueueDepth reports how many admitted jobs have not yet started — the
// admission gauge exported on /debug/vars.
func (p *Pool) QueueDepth() int64 { return p.queued.Load() }

// Close stops admission and waits until every already-accepted job has
// run.  It is safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.quit)
	p.mu.Unlock()
	// Blocked DoWait senders have woken on quit; once they are gone the
	// jobs channel can close without racing a send.
	p.senders.Wait()
	close(p.jobs)
	p.wg.Wait()
}
