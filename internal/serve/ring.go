package serve

import (
	"sort"
	"strconv"
)

// DefaultVnodes is the number of virtual nodes each peer contributes to
// the ring.  128 vnodes keeps the expected key share per peer within a
// few percent of uniform for small clusters (the ring test pins ±20%
// across 3 peers) while ring construction and lookup stay trivial.
const DefaultVnodes = 128

// Ring is a consistent-hash ring over server peers.  Each peer owns the
// arc of XXH64 key-hash space that precedes its virtual-node positions;
// Owner maps a cache key to the peer responsible for it.  Every peer
// builds its ring from the same `-peers` list, so all peers agree on
// ownership, and adding or removing one peer remaps only the keys on
// the arcs its vnodes covered (~1/N of the space) instead of reshuffling
// everything the way `hash(key) % N` would.
type Ring struct {
	vnodes int
	nodes  []string
	points []ringPoint // sorted by (hash, node, vnode)
}

type ringPoint struct {
	hash  uint64
	node  int32 // index into nodes
	vnode int32
}

// NewRing builds a ring over the given peer identifiers (deduplicated;
// order-insensitive) with `vnodes` virtual nodes per peer (<=0 picks
// DefaultVnodes).  An empty node list yields a nil ring, on which Owner
// reports every key as locally owned.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	if len(uniq) == 0 {
		return nil
	}
	// Sorted nodes make the ring identical no matter how the peer list
	// was ordered on each server's command line.
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, nodes: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for ni, n := range uniq {
		for v := 0; v < vnodes; v++ {
			h := xxhash64String(n + "#" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, node: int32(ni), vnode: int32(v)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (vanishingly rare) break deterministically so every
		// peer still agrees on ownership.
		if a.node != b.node {
			return r.nodes[a.node] < r.nodes[b.node]
		}
		return a.vnode < b.vnode
	})
	return r
}

// Owner returns the peer that owns key: the peer whose first vnode
// position is at or clockwise-after the key's hash (wrapping at the top
// of the space).
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := xxhash64String(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.nodes[r.points[i].node]
}

// Nodes lists the ring's peers in canonical (sorted) order.
func (r *Ring) Nodes() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.nodes...)
}
