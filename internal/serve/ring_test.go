package serve

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestXXHash64Vectors pins the from-scratch XXH64 against published
// reference values (seed 0): the empty input, short tails below one
// 8-byte lane, a 4-byte lane, and an input long enough to run the
// 32-byte stripe loop.
func TestXXHash64Vectors(t *testing.T) {
	vectors := []struct {
		in   string
		want uint64
	}{
		{"", 0xef46db3751d8e999},
		{"a", 0xd24ec4f1a98c6e5b},
		{"as", 0x1c330fb2d66be179},
		{"asd", 0x631c37ce72a97393},
		{"asdf", 0x415872f599cea71e},
		{"The quick brown fox jumps over the lazy dog", 0x0b242d361fda71bc},
	}
	for _, v := range vectors {
		if got := xxhash64([]byte(v.in)); got != v.want {
			t.Errorf("xxhash64(%q) = %#016x, want %#016x", v.in, got, v.want)
		}
		if got := xxhash64String(v.in); got != v.want {
			t.Errorf("xxhash64String(%q) = %#016x, want %#016x", v.in, got, v.want)
		}
	}
}

func ringKeys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, n)
	for i := range keys {
		// The ring hashes 64-char hex cache keys in production; use the
		// same shape here.
		keys[i] = fmt.Sprintf("%016x%016x%016x%016x", rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64())
	}
	return keys
}

// TestRingDistribution: at 128 vnodes, 3 peers each own their fair
// share of a large key population within +/-20%.
func TestRingDistribution(t *testing.T) {
	peers := []string{"http://peer-a:8080", "http://peer-b:8080", "http://peer-c:8080"}
	r := NewRing(peers, DefaultVnodes)
	keys := ringKeys(30000, 1)
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := float64(len(keys)) / float64(len(peers))
	for _, p := range peers {
		got := float64(counts[p])
		if got < 0.8*fair || got > 1.2*fair {
			t.Errorf("peer %s owns %d keys, want within ±20%% of %.0f (all: %v)", p, counts[p], fair, counts)
		}
	}
}

// TestRingDeterminism: the ring is insensitive to the order of the peer
// list, so differently-ordered -peers flags on each server still agree
// on ownership.
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]string{"http://x", "http://y", "http://z"}, 64)
	b := NewRing([]string{"http://z", "http://x", "http://y", "http://x"}, 64)
	for _, k := range ringKeys(1000, 2) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings disagree on %s: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingMinimalRemapping: growing 3 peers to 4 moves roughly 1/4 of
// the keys and, crucially, never moves a key between two surviving
// peers — the only allowed transition is "old owner -> new peer".
// Removing a peer is the mirror image.
func TestRingMinimalRemapping(t *testing.T) {
	three := []string{"http://a", "http://b", "http://c"}
	four := append(append([]string(nil), three...), "http://d")
	r3 := NewRing(three, DefaultVnodes)
	r4 := NewRing(four, DefaultVnodes)

	keys := ringKeys(30000, 3)
	moved, movedWrong := 0, 0
	for _, k := range keys {
		o3, o4 := r3.Owner(k), r4.Owner(k)
		if o3 != o4 {
			moved++
			if o4 != "http://d" {
				movedWrong++
			}
		}
	}
	if movedWrong != 0 {
		t.Errorf("%d keys moved between surviving peers on peer addition", movedWrong)
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.40 {
		t.Errorf("peer addition moved %.1f%% of keys, want roughly 25%%", 100*frac)
	}

	// Removal: keys not owned by the removed peer keep their owner.
	for _, k := range keys {
		o4, o3 := r4.Owner(k), r3.Owner(k)
		if o4 != "http://d" && o3 != o4 {
			t.Fatalf("key %s moved from %s to %s when d was removed", k, o4, o3)
		}
	}
}

// TestRingEdgeCases: nil/empty rings own nothing locally, single-peer
// rings own everything, duplicates and empties in the peer list are
// dropped.
func TestRingEdgeCases(t *testing.T) {
	if r := NewRing(nil, 0); r != nil {
		t.Error("empty node list should yield a nil ring")
	}
	if r := NewRing([]string{"", ""}, 0); r != nil {
		t.Error("all-empty node list should yield a nil ring")
	}
	var nilRing *Ring
	if got := nilRing.Owner("abc"); got != "" {
		t.Errorf("nil ring owner = %q, want empty", got)
	}
	solo := NewRing([]string{"http://only"}, 8)
	for _, k := range ringKeys(50, 4) {
		if solo.Owner(k) != "http://only" {
			t.Fatal("single-peer ring must own every key")
		}
	}
	if n := len(NewRing([]string{"http://a", "http://a"}, 8).Nodes()); n != 1 {
		t.Errorf("duplicate peers not deduplicated: %d nodes", n)
	}
}
