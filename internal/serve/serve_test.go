package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

const serveSrc = `
func driver(n: int): int {
    var s: int = 0
    for i = 1 to n {
        s = s + i * n
    }
    return s
}
`

// newServer builds a test server, failing the test on config errors.
func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postOptimize(t *testing.T, ts *httptest.Server, req OptimizeRequest) (int, OptimizeResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out OptimizeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("bad response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, out, string(raw)
}

// TestOptimizeEndpoint: the happy path — optimize Mini-Fortran, get
// parseable ILOC back, interpret it via the run spec, and hit the cache
// on a repeat request.
func TestOptimizeEndpoint(t *testing.T) {
	s := newServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := OptimizeRequest{
		Source: serveSrc,
		Level:  "dist",
		Run:    &RunSpec{Fn: "driver", Args: []string{"9"}},
	}
	code, out, raw := postOptimize(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if out.Cached {
		t.Error("first request reported cached")
	}
	if out.Key == "" || len(out.Key) != 64 {
		t.Errorf("bad key %q", out.Key)
	}
	if !strings.Contains(out.ILOC, "program") {
		t.Errorf("response ILOC does not look like ILOC:\n%s", out.ILOC)
	}
	if out.StaticOps <= 0 {
		t.Errorf("static_ops = %d", out.StaticOps)
	}
	if out.Run == nil || out.Run.Result != "405" || out.Run.DynamicOps <= 0 {
		t.Errorf("run result: %+v", out.Run)
	}

	// Second identical request: cache hit, same key, same ILOC.
	code2, out2, _ := postOptimize(t, ts, req)
	if code2 != http.StatusOK || !out2.Cached {
		t.Errorf("repeat request: status %d cached=%v", code2, out2.Cached)
	}
	if out2.Key != out.Key || out2.ILOC != out.ILOC {
		t.Error("cached result differs from original")
	}

	// Submitting the optimizer's own ILOC output at the same level
	// addresses a cache slot too (content addressing is on canonical
	// ILOC of the *input*, so this is a different program — but it must
	// parse and optimize cleanly).
	code3, _, raw3 := postOptimize(t, ts, OptimizeRequest{Source: out.ILOC, Level: "dist"})
	if code3 != http.StatusOK {
		t.Errorf("optimizing own output failed: %d %s", code3, raw3)
	}

	m := s.Metrics()
	if hits := m.Get("cache_hits"); hits != 1 {
		t.Errorf("cache_hits = %d, want 1", hits)
	}
	if misses := m.Get("cache_misses"); misses != 2 {
		t.Errorf("cache_misses = %d, want 2", misses)
	}
}

// TestCanonicalAddressing: within one language, the cache is addressed
// by canonical content — two textual spellings of the same ILOC hash
// to the same key.  Across languages, the resolved language is its own
// key dimension: Mini-Fortran source and the canonical ILOC it
// compiles to occupy distinct slots (resolved langs "mf" vs "iloc"),
// so a front-end bug cannot poison raw-ILOC results or vice versa.
func TestCanonicalAddressing(t *testing.T) {
	s := newServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, fromMF, raw := postOptimize(t, ts, OptimizeRequest{Source: serveSrc, Level: "none"})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if fromMF.Lang != "mf" {
		t.Errorf("resolved lang = %q, want mf", fromMF.Lang)
	}
	// "none" leaves the program untouched, so its ILOC is the canonical
	// form of the input — but it arrives as language "iloc", which is a
	// different cache dimension: distinct key, no cache hit.
	code2, fromILOC, _ := postOptimize(t, ts, OptimizeRequest{Source: fromMF.ILOC, Level: "none"})
	if code2 != http.StatusOK {
		t.Fatal("resubmit failed")
	}
	if fromILOC.Lang != "iloc" {
		t.Errorf("resolved lang = %q, want iloc", fromILOC.Lang)
	}
	if fromILOC.Key == fromMF.Key {
		t.Errorf("mf and raw iloc share a cache key despite distinct languages:\n%s", fromMF.Key)
	}
	if fromILOC.Cached {
		t.Error("cross-language resubmission must not hit the cache")
	}
	if fromILOC.ILOC != fromMF.ILOC {
		t.Error("same canonical program must still optimize identically across languages")
	}
	// Same spelling, same language: reformatting the ILOC (extra blank
	// lines) still lands on the first iloc slot — canonical addressing
	// within the language.
	code3, reformatted, _ := postOptimize(t, ts, OptimizeRequest{Source: "\n\n" + fromMF.ILOC, Level: "none"})
	if code3 != http.StatusOK {
		t.Fatal("reformatted resubmit failed")
	}
	if reformatted.Key != fromILOC.Key {
		t.Error("two spellings of the same ILOC hash differently within one language")
	}
	if !reformatted.Cached {
		t.Error("canonical resubmission within a language should hit the cache")
	}
}

// TestGVNBackendCacheDimension: the same source at the same level with
// different GVN backends must address different cache slots — and an
// invalid backend is a 400, not a cache entry.
func TestGVNBackendCacheDimension(t *testing.T) {
	s := newServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := OptimizeRequest{Source: serveSrc, Level: "reassoc",
		Run: &RunSpec{Fn: "driver", Args: []string{"9"}}}
	code, awz, raw := postOptimize(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("awz request: status %d: %s", code, raw)
	}
	if awz.GVN != "awz" {
		t.Errorf("default backend reported as %q, want awz", awz.GVN)
	}

	req.GVN = "precise"
	code2, precise, raw2 := postOptimize(t, ts, req)
	if code2 != http.StatusOK {
		t.Fatalf("precise request: status %d: %s", code2, raw2)
	}
	if precise.GVN != "precise" {
		t.Errorf("backend reported as %q, want precise", precise.GVN)
	}
	if precise.Cached {
		t.Error("precise request hit the awz cache entry")
	}
	if precise.Key == awz.Key {
		t.Errorf("backends share cache key %s", awz.Key)
	}
	// Both backends compute the same value.
	if precise.Run == nil || awz.Run == nil || precise.Run.Result != awz.Run.Result {
		t.Errorf("backends disagree on the program result: %+v vs %+v", awz.Run, precise.Run)
	}

	// Explicit "awz" is the same dimension as the default.
	req.GVN = "awz"
	code3, again, _ := postOptimize(t, ts, req)
	if code3 != http.StatusOK || !again.Cached || again.Key != awz.Key {
		t.Errorf("explicit awz did not hit the default entry: status %d cached=%v", code3, again.Cached)
	}

	req.GVN = "bogus"
	code4, _, raw4 := postOptimize(t, ts, req)
	if code4 != http.StatusBadRequest {
		t.Errorf("bogus backend: status %d, want 400 (%s)", code4, raw4)
	}
}

// TestPREBackendCacheDimension mirrors the GVN test for the PRE slot:
// the same program with a different `pre` field must address a distinct
// cache entry, every backend pair gets its own slot, and all backends
// agree on the program's result.
func TestPREBackendCacheDimension(t *testing.T) {
	s := newServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := OptimizeRequest{Source: serveSrc, Level: "partial",
		Run: &RunSpec{Fn: "driver", Args: []string{"9"}}}
	keys := map[string]string{}
	results := map[string]string{}
	for _, pre := range []string{"", "drechsler", "lcm", "lospre"} {
		req.PRE = pre
		code, resp, raw := postOptimize(t, ts, req)
		if code != http.StatusOK {
			t.Fatalf("pre=%q: status %d: %s", pre, code, raw)
		}
		want := pre
		if want == "" {
			want = "drechsler"
		}
		if resp.PRE != want {
			t.Errorf("pre=%q reported as %q, want %q", pre, resp.PRE, want)
		}
		// Empty and explicit "drechsler" are the same dimension; the
		// second of the pair must hit the first's entry.
		if prev, ok := keys[want]; ok {
			if prev != resp.Key || !resp.Cached {
				t.Errorf("pre=%q did not hit the %s entry (cached=%v)", pre, want, resp.Cached)
			}
		} else if resp.Cached {
			t.Errorf("pre=%q: first request was already cached", pre)
		}
		keys[want] = resp.Key
		if resp.Run != nil {
			results[want] = resp.Run.Result
		}
	}
	if keys["drechsler"] == keys["lcm"] || keys["drechsler"] == keys["lospre"] || keys["lcm"] == keys["lospre"] {
		t.Errorf("PRE backends share a cache key: %v", keys)
	}
	if results["drechsler"] != results["lcm"] || results["drechsler"] != results["lospre"] {
		t.Errorf("PRE backends disagree on the program result: %v", results)
	}

	req.PRE = "bogus"
	code, _, raw := postOptimize(t, ts, req)
	if code != http.StatusBadRequest {
		t.Errorf("bogus backend: status %d, want 400 (%s)", code, raw)
	}

	// The self-description advertises the per-backend versions.
	resp, err := http.Get(ts.URL + "/levels")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var levels struct {
		PREBackends map[string]string `json:"pre_backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&levels); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, b := range []string{"drechsler", "lcm", "lospre"} {
		v, ok := levels.PREBackends[b]
		if !ok || v == "" {
			t.Errorf("/levels missing pre backend %s", b)
		}
		if seen[v] {
			t.Errorf("pre backends share pipeline version %s", v)
		}
		seen[v] = true
	}
}

// TestSingleFlight100: the acceptance bar — 100 concurrent identical
// requests cost exactly one cache-miss optimization; everyone gets the
// same bytes back.
func TestSingleFlight100(t *testing.T) {
	s := newServer(t, Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 100
	body, _ := json.Marshal(OptimizeRequest{Source: serveSrc, Level: "dist"})
	var wg sync.WaitGroup
	keys := make([]string, n)
	ilocs := make([]string, n)
	errs := make([]error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := ts.Client().Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, raw)
				return
			}
			var out OptimizeResponse
			if err := json.Unmarshal(raw, &out); err != nil {
				errs[i] = err
				return
			}
			keys[i], ilocs[i] = out.Key, out.ILOC
		}(i)
	}
	close(start)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if keys[i] != keys[0] || ilocs[i] != ilocs[0] {
			t.Fatalf("request %d returned different result", i)
		}
	}
	m := s.Metrics()
	if misses := m.Get("cache_misses"); misses != 1 {
		t.Errorf("cache_misses = %d, want exactly 1 (single-flight)", misses)
	}
	if reqs := m.Get("requests"); reqs != n {
		t.Errorf("requests = %d, want %d", reqs, n)
	}
	if got := m.Get("cache_hits") + m.Get("singleflight_shared"); got != n-1 {
		t.Errorf("hits+shared = %d, want %d", got, n-1)
	}
}

// TestCheckedMode: check:true routes through the per-pass validation
// machinery and reports clean diagnostics for correct code.
func TestCheckedMode(t *testing.T) {
	s := newServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, out, raw := postOptimize(t, ts, OptimizeRequest{Source: serveSrc, Level: "reassoc", Check: true})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if len(out.Diagnostics) != 0 {
		t.Errorf("clean program produced diagnostics: %v", out.Diagnostics)
	}
	// Checked and unchecked results live under distinct keys.
	_, plain, _ := postOptimize(t, ts, OptimizeRequest{Source: serveSrc, Level: "reassoc"})
	if plain.Key == out.Key {
		t.Error("checked and unchecked requests share a cache key")
	}
}

// TestBadRequests: malformed body, unknown level, broken source.
func TestBadRequests(t *testing.T) {
	s := newServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/optimize", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}

	if code, _, raw := postOptimize(t, ts, OptimizeRequest{Source: serveSrc, Level: "bogus"}); code != http.StatusBadRequest {
		t.Errorf("unknown level: status %d %s", code, raw)
	}
	if code, _, raw := postOptimize(t, ts, OptimizeRequest{Source: "func ("}); code != http.StatusBadRequest {
		t.Errorf("broken source: status %d %s", code, raw)
	}
	if code, _, _ := postOptimize(t, ts, OptimizeRequest{Source: serveSrc, Format: "pascal"}); code != http.StatusBadRequest {
		t.Errorf("unknown format: status %d", code)
	}

	resp, err = ts.Client().Get(ts.URL + "/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /optimize: status %d", resp.StatusCode)
	}

	if errors := s.Metrics().Get("errors"); errors < 3 {
		t.Errorf("errors counter = %d, want >= 3", errors)
	}
}

// TestDebugVars: /debug/vars serves the counters, the per-pass timing
// map and the queue-depth gauge as JSON.
// TestDebugPprof verifies the live-profiling surface: the pprof index
// and a sample profile are served off the debug mux.
func TestDebugPprof(t *testing.T) {
	s := newServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/goroutine"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestDebugVars(t *testing.T) {
	s := newServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postOptimize(t, ts, OptimizeRequest{Source: serveSrc, Level: "dist"})

	resp, err := ts.Client().Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	for _, key := range []string{
		"requests", "cache_hits", "cache_misses", "singleflight_shared",
		"queue_depth", "in_flight", "pass_nanos", "pass_count",
		"pass_changed", "analysis_builds",
		"timeouts", "rejected", "errors",
	} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}
	if vars["requests"].(float64) != 1 {
		t.Errorf("requests = %v, want 1", vars["requests"])
	}
	// The dist pipeline ran: per-pass wall time must be recorded for
	// its passes.
	passNanos, ok := vars["pass_nanos"].(map[string]any)
	if !ok || len(passNanos) == 0 {
		t.Fatalf("pass_nanos empty or wrong shape: %v", vars["pass_nanos"])
	}
	for _, pass := range []string{"reassoc-dist", "gvn", "pre", "dce"} {
		if _, ok := passNanos[pass]; !ok {
			t.Errorf("pass_nanos missing %q: %v", pass, passNanos)
		}
	}
	// The SSA round-trip passes always report changed, and the run built
	// dominators at least once — the new pass-manager counters must show
	// both.
	passChanged, ok := vars["pass_changed"].(map[string]any)
	if !ok || len(passChanged) == 0 {
		t.Fatalf("pass_changed empty or wrong shape: %v", vars["pass_changed"])
	}
	for _, pass := range []string{"reassoc-dist", "gvn"} {
		if n, _ := passChanged[pass].(float64); n < 1 {
			t.Errorf("pass_changed[%q] = %v, want >= 1", pass, passChanged[pass])
		}
	}
	builds, ok := vars["analysis_builds"].(map[string]any)
	if !ok {
		t.Fatalf("analysis_builds wrong shape: %v", vars["analysis_builds"])
	}
	if n, _ := builds["dom"].(float64); n < 1 {
		t.Errorf("analysis_builds[dom] = %v, want >= 1", builds["dom"])
	}
}

// TestLevelsEndpoint: /levels lists the pipelines and a sorted pass
// inventory.
func TestLevelsEndpoint(t *testing.T) {
	s := newServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/levels")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Version string `json:"version"`
		Levels  []struct {
			Name   string   `json:"name"`
			Passes []string `json:"passes"`
		} `json:"levels"`
		Passes []string `json:"passes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Version != s.Version() {
		t.Errorf("version %q, want %q", out.Version, s.Version())
	}
	if len(out.Levels) != 4 {
		t.Errorf("want 4 levels, got %d", len(out.Levels))
	}
	for i := 1; i < len(out.Passes); i++ {
		if out.Passes[i-1] >= out.Passes[i] {
			t.Errorf("pass inventory not sorted at %d: %v", i, out.Passes)
		}
	}
}

// TestTimeout: a request whose deadline expires before the
// optimization can run returns 504 and bumps the timeouts counter.
// (A one-nanosecond budget is already spent by the time the request is
// admitted, so the outcome is deterministic; mid-interpretation
// cancellation is covered by the interp and core context tests.)
func TestTimeout(t *testing.T) {
	s := newServer(t, Config{Timeout: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _, raw := postOptimize(t, ts, OptimizeRequest{Source: serveSrc, Level: "dist", Check: true})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", code, raw)
	}
	if n := s.Metrics().Get("timeouts"); n != 1 {
		t.Errorf("timeouts = %d, want 1", n)
	}
}

// TestHealthzAndSIGTERM: the daemon reports healthy, then drains
// gracefully when SIGTERM arrives — the in-flight request completes,
// Run returns nil, and liveness flips to draining.
func TestHealthzAndSIGTERM(t *testing.T) {
	s := newServer(t, Config{DrainTimeout: 5 * time.Second})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := signalContext(t)
	defer stop()

	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, l) }()
	base := "http://" + l.Addr().String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	// An optimize request in flight when the signal arrives must still
	// complete.  Wait until the handler has the request before sending
	// SIGTERM so the drain actually has something to wait for.
	reqBody, _ := json.Marshal(OptimizeRequest{Source: serveSrc, Level: "dist"})
	inflight := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/optimize", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			inflight <- err
			return
		}
		defer resp.Body.Close()
		io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			inflight <- fmt.Errorf("in-flight request got %d", resp.StatusCode)
			return
		}
		inflight <- nil
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Get("requests") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("optimize request never reached the handler")
		}
		time.Sleep(time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain within 10s of SIGTERM")
	}
	if err := <-inflight; err != nil {
		t.Errorf("in-flight request during drain: %v", err)
	}
}

// signalContext builds the daemon's signal-bound context without
// killing the test process.
func signalContext(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return NotifyContext(context.Background())
}
