// Package serve turns the epre optimizer into a long-lived, concurrent
// optimization service: an HTTP/JSON daemon that accepts Mini-Fortran
// or ILOC source, optimizes it at a requested level on a bounded worker
// pool, and returns the optimized ILOC together with static/dynamic
// operation statistics and checker diagnostics.
//
// The daemon's spine is the same shape as an inference-serving stack:
//
//   - admission: a bounded worker pool ([Pool]) with a bounded queue;
//     requests beyond capacity are shed with 503 rather than piling up;
//   - deduplication: a content-addressed LRU result cache ([Cache])
//     keyed by SHA-256 of (pipeline version, level, checked?, canonical
//     ILOC), with single-flight coalescing so N concurrent identical
//     requests cost one optimization;
//   - deadlines: every request runs under a context deadline that is
//     plumbed through the optimizer, the checker's differential
//     interpretation, and the interpreter;
//   - observability: request/cache/timeout counters, per-pass wall
//     time, and a live queue-depth gauge on /debug/vars, plus /healthz
//     for liveness (503 while draining);
//   - graceful drain: Run shuts the listener down on context
//     cancellation (the daemon wires SIGINT/SIGTERM to it), completes
//     in-flight requests, and drains the pool.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minift"
)

// Config tunes the service; the zero value picks sensible defaults.
type Config struct {
	// Workers bounds concurrently running optimizations (default
	// GOMAXPROCS).
	Workers int
	// Queue bounds additionally queued optimizations (default 64).
	Queue int
	// CacheSize bounds the result cache, in entries (default 256).
	CacheSize int
	// Timeout is the per-request deadline (default 30s).
	Timeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 10s).
	DrainTimeout time.Duration
	// OptWorkers is the function-level parallelism within a single
	// optimization (core.OptimizeOptions.Workers; default 1, serial —
	// with many concurrent requests, request-level parallelism already
	// saturates the pool).
	OptWorkers int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.OptWorkers <= 0 {
		c.OptWorkers = 1
	}
	return c
}

// OptimizeRequest is the POST /optimize body.
type OptimizeRequest struct {
	// Source is Mini-Fortran or textual ILOC.
	Source string `json:"source"`
	// Format forces the source language: "mf" or "iloc".  Empty means
	// sniff (ILOC programs start with the "program" keyword).
	Format string `json:"format,omitempty"`
	// Level is the optimization level name (default "reassoc").
	Level string `json:"level,omitempty"`
	// GVN selects the value-numbering backend: "awz" (default) or
	// "precise".  The backend is a cache-key dimension — each backend
	// has its own pipeline version, so results never cross over.
	GVN string `json:"gvn,omitempty"`
	// PRE selects the redundancy-elimination backend: "drechsler"
	// (default), "lcm" or "lospre".  Like GVN it is a cache-key
	// dimension via the per-combination pipeline version.
	PRE string `json:"pre,omitempty"`
	// Check runs the optimization in checked mode: every pass is
	// validated by the internal/check analyzers and the diagnostics are
	// returned.
	Check bool `json:"check,omitempty"`
	// Run optionally interprets the optimized program.
	Run *RunSpec `json:"run,omitempty"`
}

// RunSpec asks the service to interpret the optimized program.
type RunSpec struct {
	// Fn is the function to call (required).
	Fn string `json:"fn"`
	// Args are the call arguments, one per parameter, written like the
	// CLI's -args values: "42" is an integer, "4.2" a float.
	Args []string `json:"args,omitempty"`
}

// RunResult reports one interpretation.
type RunResult struct {
	Result     string   `json:"result"`
	DynamicOps int64    `json:"dynamic_ops"`
	Output     []string `json:"output,omitempty"`
}

// OptimizeResponse is the POST /optimize reply.
type OptimizeResponse struct {
	// Key is the content-addressed cache key of this result.
	Key string `json:"key"`
	// Cached reports that the result came from the cache; Shared that
	// this request coalesced onto a concurrent identical one.
	Cached bool   `json:"cached"`
	Shared bool   `json:"shared,omitempty"`
	Level  string `json:"level"`
	// GVN is the value-numbering backend the result was produced with.
	GVN string `json:"gvn"`
	// PRE is the redundancy-elimination backend the result was
	// produced with.
	PRE string `json:"pre"`
	// ILOC is the optimized program.
	ILOC      string `json:"iloc"`
	StaticOps int    `json:"static_ops"`
	// Diagnostics are the checker findings (checked mode only; empty
	// means the optimization validated cleanly).
	Diagnostics []string   `json:"diagnostics,omitempty"`
	Run         *RunResult `json:"run,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// cachedResult is what the cache stores per key.  The program pointer
// is immutable after construction: interpretation never mutates the
// program, so concurrent Run requests can share it.
type cachedResult struct {
	iloc      string
	staticOps int
	diags     []string
	prog      *ir.Program
}

// Server is the optimization service.
type Server struct {
	cfg      Config
	pool     *Pool
	cache    *Cache
	metrics  *Metrics
	mux      *http.ServeMux
	hs       *http.Server
	version  string
	versions map[backendPair]string
	draining atomic.Bool
}

// backendPair is one point of the (GVN × PRE) backend product — the
// cache's backend dimension.
type backendPair struct {
	gvn core.GVNBackend
	pre core.PREBackend
}

// New assembles a server (pool, cache, metrics, routes); it does not
// listen yet.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg.withDefaults(), version: core.PipelineVersion()}
	// Per-combination pipeline versions, each folded into the cache
	// keys of the requests that select that backend pair: results
	// computed by one backend combination can never answer for another.
	s.versions = make(map[backendPair]string, len(core.GVNBackends)*len(core.PREBackends))
	for _, g := range core.GVNBackends {
		for _, p := range core.PREBackends {
			s.versions[backendPair{g, p}] = core.PipelineVersionFor(g, p)
		}
	}
	s.pool = NewPool(s.cfg.Workers, s.cfg.Queue)
	s.cache = NewCache(s.cfg.CacheSize)
	s.metrics = NewMetrics(s.pool.QueueDepth)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/optimize", s.handleOptimize)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/levels", s.handleLevels)
	s.mux.Handle("/debug/vars", s.metrics)
	// Live profiling of the daemon: the stock pprof handlers hang off
	// the same debug mux, so `go tool pprof host/debug/pprof/heap` (or
	// profile, goroutine, ...) works against a running service.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.hs = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	return s
}

// Handler exposes the service's routes, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the counters, for tests and the bench harness.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Version is the pipeline version folded into every cache key.
func (s *Server) Version() string { return s.version }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error { return s.hs.Serve(l) }

// Shutdown drains gracefully: liveness flips to 503, the listener
// closes, in-flight HTTP requests complete (bounded by ctx), and the
// worker pool drains.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.hs.Shutdown(ctx)
	s.pool.Close()
	return err
}

// Run serves on l until ctx is cancelled (the daemon hands Run a
// signal-bound context, so SIGTERM lands here), then drains gracefully
// within Config.DrainTimeout.  It returns nil after a clean drain.
func (s *Server) Run(ctx context.Context, l net.Listener) error {
	errc := make(chan error, 1)
	go func() { errc <- s.hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := s.Shutdown(sctx)
	if serr := <-errc; serr != nil && serr != http.ErrServerClosed && err == nil {
		err = serr
	}
	return err
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleLevels lists the optimization levels and their pass sequences,
// plus the individually runnable passes (sorted by name) and the
// pipeline version — the service's self-description.
func (s *Server) handleLevels(w http.ResponseWriter, r *http.Request) {
	type levelInfo struct {
		Name   string   `json:"name"`
		Passes []string `json:"passes"`
	}
	var levels []levelInfo
	for _, l := range core.Levels {
		levels = append(levels, levelInfo{Name: string(l), Passes: core.PassNames(l)})
	}
	var passes []string
	for _, p := range core.AllPasses() {
		passes = append(passes, p.Name)
	}
	sort.Strings(passes)
	gvnVersions := make(map[string]string, len(core.GVNBackends))
	for _, g := range core.GVNBackends {
		gvnVersions[string(g)] = s.versions[backendPair{g, core.PREDrechsler}]
	}
	preVersions := make(map[string]string, len(core.PREBackends))
	for _, p := range core.PREBackends {
		preVersions[string(p)] = s.versions[backendPair{core.GVNAWZ, p}]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version":      s.version,
		"levels":       levels,
		"passes":       passes,
		"gvn_backends": gvnVersions,
		"pre_backends": preVersions,
	})
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.metrics.requests.Add(1)
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)

	var req OptimizeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	levelName := req.Level
	if levelName == "" {
		levelName = "reassoc"
	}
	level, err := core.ParseLevel(levelName)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	gvnBackend, err := core.ParseGVNBackend(req.GVN)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	preBackend, err := core.ParsePREBackend(req.PRE)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	prog, err := parseSource(req.Source, req.Format)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	canonical := prog.String()
	key := CacheKey(canonical, string(level), s.versions[backendPair{gvnBackend, preBackend}], req.Check)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()

	val, hit, shared, err := s.cache.Do(ctx, key, func() (any, error) {
		s.metrics.cacheMisses.Add(1)
		var (
			res  *cachedResult
			oerr error
			ran  bool
		)
		if perr := s.pool.Do(ctx, func(ctx context.Context) {
			ran = true
			res, oerr = s.optimize(ctx, prog, level, gvnBackend, preBackend, req.Check)
		}); perr != nil {
			return nil, perr
		}
		if !ran {
			// The pool skipped the job because the context expired
			// while it was queued.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, errors.New("serve: job skipped")
		}
		return res, oerr
	})
	switch {
	case hit:
		s.metrics.cacheHits.Add(1)
	case shared:
		s.metrics.shared.Add(1)
	}
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrPoolClosed):
			s.metrics.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			s.failQuiet(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			s.metrics.timeouts.Add(1)
			s.failQuiet(w, http.StatusGatewayTimeout, err)
		default:
			s.fail(w, http.StatusUnprocessableEntity, err)
		}
		return
	}
	res := val.(*cachedResult)

	resp := &OptimizeResponse{
		Key:         key,
		Cached:      hit,
		Shared:      shared,
		Level:       string(level),
		GVN:         string(gvnBackend),
		PRE:         string(preBackend),
		ILOC:        res.iloc,
		StaticOps:   res.staticOps,
		Diagnostics: res.diags,
	}
	if req.Run != nil {
		rr, err := runProgram(ctx, res.prog, req.Run)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				s.metrics.timeouts.Add(1)
				s.failQuiet(w, http.StatusGatewayTimeout, err)
			} else {
				s.fail(w, http.StatusUnprocessableEntity, err)
			}
			return
		}
		resp.Run = rr
	}
	writeJSON(w, http.StatusOK, resp)
}

// optimize is the cache-miss path, executed on a pool worker.
func (s *Server) optimize(ctx context.Context, prog *ir.Program, level core.Level, gvn core.GVNBackend, pre core.PREBackend, checked bool) (*cachedResult, error) {
	if checked {
		out, diags, err := core.CheckedOptimizeFor(ctx, prog, level, gvn, pre)
		if err != nil {
			return nil, err
		}
		msgs := make([]string, len(diags))
		for i, d := range diags {
			msgs[i] = d.String()
		}
		return &cachedResult{iloc: out.String(), staticOps: out.InstrCount(), diags: msgs, prog: out}, nil
	}
	out, err := core.OptimizeWith(prog, level, core.OptimizeOptions{
		Ctx:     ctx,
		Workers: s.cfg.OptWorkers,
		OnPass:  s.metrics.ObservePass,
		GVN:     gvn,
		PRE:     pre,
	})
	if err != nil {
		return nil, err
	}
	return &cachedResult{iloc: out.String(), staticOps: out.InstrCount(), prog: out}, nil
}

// runProgram interprets the optimized program under the request
// deadline.
func runProgram(ctx context.Context, prog *ir.Program, spec *RunSpec) (*RunResult, error) {
	if spec.Fn == "" {
		return nil, errors.New("run: missing fn")
	}
	args, err := parseArgs(spec.Args)
	if err != nil {
		return nil, err
	}
	m := interp.NewMachine(prog)
	m.SetContext(ctx)
	v, err := m.Call(spec.Fn, args...)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(m.Output))
	for i, o := range m.Output {
		out[i] = o.String()
	}
	return &RunResult{Result: v.String(), DynamicOps: m.Steps, Output: out}, nil
}

// parseSource compiles Mini-Fortran or parses ILOC, verifying either
// way.  An empty format sniffs: textual ILOC programs begin with the
// "program" keyword.
func parseSource(src, format string) (*ir.Program, error) {
	if format == "" {
		if strings.HasPrefix(strings.TrimSpace(src), "program") {
			format = "iloc"
		} else {
			format = "mf"
		}
	}
	switch format {
	case "iloc":
		p, err := ir.ParseProgramString(src)
		if err != nil {
			return nil, err
		}
		if err := ir.VerifyProgram(p); err != nil {
			return nil, err
		}
		return p, nil
	case "mf":
		return minift.Compile(src)
	}
	return nil, fmt.Errorf("unknown source format %q (want \"mf\" or \"iloc\")", format)
}

// parseArgs converts CLI-style argument strings ("42" int, "4.2"
// float) into interpreter values.
func parseArgs(specs []string) ([]interp.Value, error) {
	vals := make([]interp.Value, 0, len(specs))
	for _, tok := range specs {
		tok = strings.TrimSpace(tok)
		if strings.ContainsAny(tok, ".eE") {
			f, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return nil, fmt.Errorf("bad argument %q", tok)
			}
			vals = append(vals, interp.FloatVal(f))
		} else {
			i, err := strconv.ParseInt(tok, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad argument %q", tok)
			}
			vals = append(vals, interp.IntVal(i))
		}
	}
	return vals, nil
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.metrics.errors.Add(1)
	s.failQuiet(w, status, err)
}

// failQuiet writes an error response without bumping the error counter
// (load shedding and timeouts have their own counters).
func (s *Server) failQuiet(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
