// Package serve turns the epre optimizer into a long-lived, concurrent
// optimization service: an HTTP/JSON daemon that accepts Mini-Fortran
// or ILOC source, optimizes it at a requested level on a bounded worker
// pool, and returns the optimized ILOC together with static/dynamic
// operation statistics and checker diagnostics.
//
// The package is layered like an inference-serving stack, and the files
// follow the layers:
//
//   - transport (transport.go, batch.go): HTTP handlers decode
//     requests, route them — including forwarding a request to the ring
//     peer that owns its cache key — and map errors onto status codes.
//     The batch endpoint amortizes HTTP+JSON overhead over many
//     programs per request.
//   - cache (cache.go, diskstore.go, ring.go, peers.go): a
//     content-addressed LRU keyed by SHA-256 of (pipeline version,
//     level, checked?, canonical ILOC) with single-flight coalescing,
//     backed by an optional persistent on-disk store that survives
//     restarts and is sharded across peers by a consistent-hash ring.
//   - pool (pool.go): a bounded worker pool with a bounded admission
//     queue; single requests beyond capacity are shed with 503, batch
//     items block for a slot instead (the batch was already admitted).
//
// Everything runs under per-request context deadlines plumbed through
// the optimizer, the checker and the interpreter; counters for every
// layer are exported on /debug/vars and /healthz reports liveness plus
// per-peer ring health.  Run drains gracefully on SIGINT/SIGTERM.
package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ir"
)

// Config tunes the service; the zero value picks sensible defaults.
type Config struct {
	// Workers bounds concurrently running optimizations (default
	// GOMAXPROCS).
	Workers int
	// Queue bounds additionally queued optimizations (default 64).
	Queue int
	// CacheSize bounds the in-memory result cache, in entries (default
	// 256).
	CacheSize int
	// Timeout is the per-request deadline (default 30s).
	Timeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 10s).
	DrainTimeout time.Duration
	// OptWorkers is the function-level parallelism within a single
	// optimization (core.OptimizeOptions.Workers; default 1, serial —
	// with many concurrent requests, request-level parallelism already
	// saturates the pool).
	OptWorkers int
	// MaxBatch bounds the item count of one /optimize/batch request
	// (default 256).
	MaxBatch int

	// CacheDir, when set, roots a persistent content-addressed result
	// store underneath the LRU: misses consult it before recomputing,
	// results are written back, and at startup the most recent entries
	// are warmed into the LRU so a restarted server keeps its hit rate.
	CacheDir string
	// DiskCacheBytes bounds the on-disk store (0 = unlimited); least
	// recently used entries are evicted past the budget.
	DiskCacheBytes int64
	// DiskFsync syncs entry files before the atomic rename (slower;
	// survives power loss, not just process death).
	DiskFsync bool

	// Peers is the full list of server base URLs forming a
	// consistent-hash ring over the cache key space, including this
	// server's own URL (Self).  With fewer than two distinct peers the
	// ring is disabled and every key is owned locally.
	Peers []string
	// Self is this server's base URL as it appears in Peers.
	Self string
	// Vnodes is the virtual-node count per peer on the ring (default
	// DefaultVnodes = 128).
	Vnodes int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.OptWorkers <= 0 {
		c.OptWorkers = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.Vnodes <= 0 {
		c.Vnodes = DefaultVnodes
	}
	return c
}

// cachedResult is what the cache stores per key.  The parsed program is
// derived lazily from the ILOC text (results warmed from disk never pay
// for parsing unless a run is requested); once built it is immutable,
// so concurrent Run requests share it.
type cachedResult struct {
	iloc      string
	staticOps int
	diags     []string

	once    sync.Once
	prog    *ir.Program
	progErr error
}

// program returns the parsed optimized program, building it on first
// use.  Results constructed by the optimizer carry their program
// already; disk- and warm-path results parse their ILOC here.
func (c *cachedResult) program() (*ir.Program, error) {
	c.once.Do(func() {
		if c.prog == nil {
			c.prog, c.progErr = ir.ParseProgramString(c.iloc)
		}
	})
	return c.prog, c.progErr
}

// Server is the optimization service.
type Server struct {
	cfg      Config
	pool     *Pool
	cache    *Cache
	disk     *DiskStore
	ring     *Ring
	peers    *peerSet
	metrics  *Metrics
	mux      *http.ServeMux
	hs       *http.Server
	version  string
	versions map[backendPair]string
	draining atomic.Bool

	// computeGate, when set (tests only), is invoked at the start of
	// every cache-miss computation — a rendezvous for deterministic
	// single-flight tests.
	computeGate func(key string)
}

// backendPair is one point of the (GVN × PRE) backend product — the
// cache's backend dimension.
type backendPair struct {
	gvn core.GVNBackend
	pre core.PREBackend
}

// New assembles a server (pool, cache, disk store, ring, metrics,
// routes); it does not listen yet.  It fails only when a configured
// CacheDir cannot be opened.
func New(cfg Config) (*Server, error) {
	s := &Server{cfg: cfg.withDefaults(), version: core.PipelineVersion()}
	// Per-combination pipeline versions, each folded into the cache
	// keys of the requests that select that backend pair: results
	// computed by one backend combination can never answer for another.
	s.versions = make(map[backendPair]string, len(core.GVNBackends)*len(core.PREBackends))
	for _, g := range core.GVNBackends {
		for _, p := range core.PREBackends {
			s.versions[backendPair{g, p}] = core.PipelineVersionFor(g, p)
		}
	}
	s.pool = NewPool(s.cfg.Workers, s.cfg.Queue)
	s.cache = NewCache(s.cfg.CacheSize)
	s.metrics = NewMetrics(s.pool.QueueDepth)
	if s.cfg.CacheDir != "" {
		disk, err := OpenDiskStore(s.cfg.CacheDir, s.cfg.DiskCacheBytes, s.cfg.DiskFsync)
		if err != nil {
			return nil, err
		}
		s.disk = disk
		s.disk.onCorrupt = func() { s.metrics.diskCorrupt.Add(1) }
		s.warm()
	}
	if ring := NewRing(s.cfg.Peers, s.cfg.Vnodes); ring != nil && len(ring.Nodes()) > 1 {
		s.ring = ring
		s.peers = newPeerSet(s.cfg.Self, ring.Nodes())
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/optimize", s.handleOptimize)
	s.mux.HandleFunc("/optimize/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/levels", s.handleLevels)
	s.mux.Handle("/debug/vars", s.metrics)
	// Live profiling of the daemon: the stock pprof handlers hang off
	// the same debug mux, so `go tool pprof host/debug/pprof/heap` (or
	// profile, goroutine, ...) works against a running service.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.hs = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	return s, nil
}

// warm pre-loads the hot set — the most recently used disk entries, up
// to the LRU's capacity — into the in-memory cache, so the first pass
// of traffic after a restart hits memory, not disk.
func (s *Server) warm() {
	keys := s.disk.RecentKeys(s.cfg.CacheSize)
	// Oldest of the hot set first, so LRU recency ends up matching disk
	// recency.
	for i := len(keys) - 1; i >= 0; i-- {
		res, ok := s.disk.Get(keys[i])
		if !ok {
			continue
		}
		s.cache.Put(keys[i], &cachedResult{iloc: res.ILOC, staticOps: res.StaticOps, diags: res.Diags})
		s.metrics.diskWarmed.Add(1)
	}
}

// Handler exposes the service's routes, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the counters, for tests and the bench harness.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Version is the pipeline version folded into every cache key.
func (s *Server) Version() string { return s.version }

// Disk exposes the persistent store (nil without CacheDir), for tests.
func (s *Server) Disk() *DiskStore { return s.disk }

// Ring exposes the peer ring (nil when unsharded), for tests.
func (s *Server) Ring() *Ring { return s.ring }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error { return s.hs.Serve(l) }

// Shutdown drains gracefully: liveness flips to 503, the listener
// closes, in-flight HTTP requests complete (bounded by ctx), and the
// worker pool drains.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.hs.Shutdown(ctx)
	s.pool.Close()
	return err
}

// Run serves on l until ctx is cancelled (the daemon hands Run a
// signal-bound context, so SIGTERM lands here), then drains gracefully
// within Config.DrainTimeout.  It returns nil after a clean drain.
func (s *Server) Run(ctx context.Context, l net.Listener) error {
	errc := make(chan error, 1)
	go func() { errc <- s.hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := s.Shutdown(sctx)
	if serr := <-errc; serr != nil && serr != http.ErrServerClosed && err == nil {
		err = serr
	}
	return err
}

// reqSpec is one parsed, validated, keyed optimization request — the
// unit the cache/pool layers work on, shared by the single and batch
// transports.
type reqSpec struct {
	prog    *ir.Program
	lang    string
	level   core.Level
	gvn     core.GVNBackend
	pre     core.PREBackend
	checked bool
	run     *RunSpec
	key     string
}

// prepare validates one OptimizeRequest into a reqSpec.  All failures
// here are the client's fault (HTTP 400).
func (s *Server) prepare(req *OptimizeRequest) (*reqSpec, error) {
	levelName := req.Level
	if levelName == "" {
		levelName = "reassoc"
	}
	level, err := core.ParseLevel(levelName)
	if err != nil {
		return nil, err
	}
	gvnBackend, err := core.ParseGVNBackend(req.GVN)
	if err != nil {
		return nil, err
	}
	preBackend, err := core.ParsePREBackend(req.PRE)
	if err != nil {
		return nil, err
	}
	langName := req.Lang
	if langName == "" {
		langName = req.Format // legacy field
	}
	prog, langName, err := parseSource(req.Source, langName)
	if err != nil {
		return nil, err
	}
	spec := &reqSpec{
		prog:    prog,
		lang:    langName,
		level:   level,
		gvn:     gvnBackend,
		pre:     preBackend,
		checked: req.Check,
		run:     req.Run,
	}
	spec.key = CacheKey(prog.String(), langName, string(level), s.versions[backendPair{gvnBackend, preBackend}], req.Check)
	return spec, nil
}

// ownerOf maps a cache key to its ring owner.  local is true when this
// server owns the key (or no ring is configured).
func (s *Server) ownerOf(key string) (owner string, local bool) {
	if s.ring == nil {
		return "", true
	}
	owner = s.ring.Owner(key)
	return owner, owner == s.cfg.Self
}

// localOutcome reports how serveLocal satisfied a request, for the
// response's cache-provenance fields.
type localOutcome struct {
	hit     bool // in-memory cache hit
	shared  bool // coalesced onto a concurrent identical computation
	diskHit bool // answered from the persistent store without recompute
}

// serveLocal answers one spec from this server: memory cache, then the
// in-flight table, then the disk store, then an actual optimization on
// the pool (written back to disk).  `admitted` selects the pool
// admission policy: false sheds with ErrQueueFull when the queue is
// full (single requests), true blocks for a slot (batch items, which
// were admitted as part of their batch).
func (s *Server) serveLocal(ctx context.Context, spec *reqSpec, admitted bool) (*cachedResult, localOutcome, error) {
	var out localOutcome
	val, hit, shared, err := s.cache.Do(ctx, spec.key, func() (any, error) {
		if gate := s.computeGate; gate != nil {
			gate(spec.key)
		}
		if res, ok := s.disk.Get(spec.key); ok {
			out.diskHit = true
			s.metrics.diskHits.Add(1)
			return &cachedResult{iloc: res.ILOC, staticOps: res.StaticOps, diags: res.Diags}, nil
		}
		s.metrics.cacheMisses.Add(1)
		var (
			res  *cachedResult
			oerr error
			ran  bool
		)
		job := func(ctx context.Context) {
			ran = true
			res, oerr = s.optimize(ctx, spec)
		}
		var perr error
		if admitted {
			perr = s.pool.DoWait(ctx, job)
		} else {
			perr = s.pool.Do(ctx, job)
		}
		if perr != nil {
			return nil, perr
		}
		if !ran {
			// The pool skipped the job because the context expired
			// while it was queued.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, errors.New("serve: job skipped")
		}
		if oerr != nil {
			return nil, oerr
		}
		if s.disk != nil {
			if derr := s.disk.Put(spec.key, &storedResult{ILOC: res.iloc, StaticOps: res.staticOps, Diags: res.diags}); derr == nil {
				s.metrics.diskWrites.Add(1)
			}
		}
		return res, nil
	})
	out.hit, out.shared = hit, shared
	switch {
	case hit:
		s.metrics.cacheHits.Add(1)
	case shared:
		s.metrics.shared.Add(1)
	}
	if err != nil {
		return nil, out, err
	}
	return val.(*cachedResult), out, nil
}

// optimize is the cache-miss path, executed on a pool worker.
func (s *Server) optimize(ctx context.Context, spec *reqSpec) (*cachedResult, error) {
	if spec.checked {
		out, diags, err := core.CheckedOptimizeFor(ctx, spec.prog, spec.level, spec.gvn, spec.pre)
		if err != nil {
			return nil, err
		}
		msgs := make([]string, len(diags))
		for i, d := range diags {
			msgs[i] = d.String()
		}
		return &cachedResult{iloc: out.String(), staticOps: out.InstrCount(), diags: msgs, prog: out}, nil
	}
	out, err := core.OptimizeWith(spec.prog, spec.level, core.OptimizeOptions{
		Ctx:     ctx,
		Workers: s.cfg.OptWorkers,
		OnPass:  s.metrics.ObservePass,
		GVN:     spec.gvn,
		PRE:     spec.pre,
	})
	if err != nil {
		return nil, err
	}
	return &cachedResult{iloc: out.String(), staticOps: out.InstrCount(), prog: out}, nil
}

// respond builds the wire response for a locally served spec, running
// the optional interpretation.
func (s *Server) respond(ctx context.Context, spec *reqSpec, res *cachedResult, out localOutcome) (*OptimizeResponse, error) {
	resp := &OptimizeResponse{
		Key:         spec.key,
		Cached:      out.hit,
		Shared:      out.shared,
		DiskCached:  out.diskHit,
		Level:       string(spec.level),
		Lang:        spec.lang,
		GVN:         string(spec.gvn),
		PRE:         string(spec.pre),
		ILOC:        res.iloc,
		StaticOps:   res.staticOps,
		Diagnostics: res.diags,
	}
	if spec.run != nil {
		prog, err := res.program()
		if err != nil {
			return nil, err
		}
		rr, err := runProgram(ctx, prog, spec.run)
		if err != nil {
			return nil, err
		}
		resp.Run = rr
	}
	return resp, nil
}
