package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
)

func shardSrc(i int) string {
	return fmt.Sprintf(`
func driver(n: int): int {
    var s: int = %d
    for i = 1 to n {
        s = s + i * n + %d
    }
    return s
}
`, i, i*11)
}

// startPeers binds n listeners, builds one server per listener with the
// caller's config (given every peer URL), and serves them for the test's
// lifetime.
func startPeers(t *testing.T, n int, cfg func(i int, urls []string) Config) ([]*Server, []string) {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	servers := make([]*Server, n)
	for i := range servers {
		servers[i] = newServer(t, cfg(i, urls))
		go servers[i].Serve(listeners[i])
		s := servers[i]
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		})
	}
	return servers, urls
}

func postURL(t *testing.T, base string, req OptimizeRequest) (int, OptimizeResponse, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var out OptimizeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("bad response %q: %v", raw, err)
		}
	} else {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	return resp.StatusCode, out, resp.Header
}

// defaultKeyFor computes the cache key a server assigns a default
// (awz/drechsler, unchecked) request — so tests can consult the ring
// from outside.
func defaultKeyFor(t *testing.T, src, level string) string {
	t.Helper()
	prog, langName, err := parseSource(src, "")
	if err != nil {
		t.Fatal(err)
	}
	lvl, err := core.ParseLevel(level)
	if err != nil {
		t.Fatal(err)
	}
	version := core.PipelineVersionFor(core.GVNAWZ, core.PREDrechsler)
	return CacheKey(prog.String(), langName, string(lvl), version, false)
}

// TestTwoPeerSharding is the acceptance scenario: two in-process peers
// on one consistent-hash ring; every request lands on peer 0; keys
// owned by peer 1 are forwarded there (and answered byte-identically to
// a direct optimization); a second pass is pure cache hits — each
// distinct program is computed exactly once cluster-wide, which is
// precisely what two uncoordinated caches cannot do.
func TestTwoPeerSharding(t *testing.T) {
	servers, urls := startPeers(t, 2, func(i int, urls []string) Config {
		return Config{Peers: urls, Self: urls[i], Workers: 2}
	})
	const n = 24
	first := make([]OptimizeResponse, n)
	forwarded := 0
	for i := 0; i < n; i++ {
		_, out, hdr := postURL(t, urls[0], OptimizeRequest{Source: shardSrc(i), Level: "dist"})
		first[i] = out
		if by := hdr.Get(servedByHeader); by != "" {
			if by != urls[1] {
				t.Errorf("request %d relayed by unexpected peer %q", i, by)
			}
			forwarded++
		}
	}
	if forwarded == 0 || forwarded == n {
		t.Fatalf("forwarded %d/%d requests; want a split across both peers", forwarded, n)
	}
	m0, m1 := servers[0].Metrics(), servers[1].Metrics()
	if got := m0.Get("peer_forwards"); got != int64(forwarded) {
		t.Errorf("peer_forwards = %d, want %d", got, forwarded)
	}
	if got := m0.Get("peer_forward_errors"); got != 0 {
		t.Errorf("peer_forward_errors = %d, want 0", got)
	}
	if got := m1.Get("requests"); got != int64(forwarded) {
		t.Errorf("peer 1 requests = %d, want %d", got, forwarded)
	}

	// The forwarded path returns exactly the bytes a direct, in-process
	// optimization produces.
	prog, _, err := parseSource(shardSrc(0), "")
	if err != nil {
		t.Fatal(err)
	}
	lvl, err := core.ParseLevel("dist")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.OptimizeWith(prog, lvl, core.OptimizeOptions{
		GVN: core.GVNAWZ, PRE: core.PREDrechsler,
	})
	if err != nil {
		t.Fatal(err)
	}
	if first[0].ILOC != direct.String() {
		t.Errorf("served ILOC differs from direct core.Optimize output")
	}

	// Second pass: every response is a cache hit somewhere on the ring,
	// byte-identical to the first pass.
	for i := 0; i < n; i++ {
		_, out, _ := postURL(t, urls[0], OptimizeRequest{Source: shardSrc(i), Level: "dist"})
		if !out.Cached {
			t.Errorf("second-pass request %d missed", i)
		}
		if out.Key != first[i].Key || out.ILOC != first[i].ILOC {
			t.Errorf("second-pass request %d differs from the first pass", i)
		}
	}
	if misses := m0.Get("cache_misses") + m1.Get("cache_misses"); misses != n {
		t.Errorf("cluster-wide cache_misses = %d after 2x%d requests, want %d", misses, n, n)
	}
}

// TestTwoPeerBatch: a batch sent to one peer forwards the items owned
// by the other peer as a sub-batch; results come back in order and
// match the single endpoint.
func TestTwoPeerBatch(t *testing.T) {
	servers, urls := startPeers(t, 2, func(i int, urls []string) Config {
		return Config{Peers: urls, Self: urls[i], Workers: 2}
	})
	const n = 12
	req := BatchRequest{Defaults: &BatchDefaults{Level: "dist"}}
	for i := 0; i < n; i++ {
		req.Items = append(req.Items, OptimizeRequest{Source: shardSrc(i)})
	}
	body, _ := json.Marshal(&req)
	resp, err := http.Post(urls[0]+"/optimize/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, raw)
	}
	var out BatchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != n {
		t.Fatalf("%d items, want %d", len(out.Items), n)
	}
	for i, item := range out.Items {
		if item.Index != i || item.Error != "" || item.OptimizeResponse == nil {
			t.Fatalf("item %d: index=%d error=%q", i, item.Index, item.Error)
		}
		// Every item must match the single endpoint (asked of the peer
		// that owns it, which after the batch has it cached).
		_, single, _ := postURL(t, urls[0], OptimizeRequest{Source: shardSrc(i), Level: "dist"})
		if single.Key != item.Key || single.ILOC != item.ILOC {
			t.Errorf("item %d differs from the single endpoint", i)
		}
	}
	m0, m1 := servers[0].Metrics(), servers[1].Metrics()
	if m0.Get("peer_forwards") == 0 {
		t.Error("batch never forwarded a sub-batch")
	}
	if m1.Get("batch_requests") == 0 {
		t.Error("peer 1 never received a sub-batch")
	}
	if misses := m0.Get("cache_misses") + m1.Get("cache_misses"); misses != n {
		t.Errorf("cluster-wide cache_misses = %d, want %d", misses, n)
	}
}

// TestForwardLoopGuard: peers with *disagreeing* rings (different vnode
// counts) cannot bounce a request forever — the loop-guard header makes
// the recipient of a forward serve locally no matter what its own ring
// says, so forwarding terminates after one hop.
func TestForwardLoopGuard(t *testing.T) {
	vnodes := []int{128, 64}
	servers, urls := startPeers(t, 2, func(i int, urls []string) Config {
		return Config{Peers: urls, Self: urls[i], Vnodes: vnodes[i]}
	})
	r0, r1 := NewRing(urls, vnodes[0]), NewRing(urls, vnodes[1])

	// Find a program both rings want to disown: peer 0 says peer 1 owns
	// it, peer 1 says peer 0 owns it.  Without the loop guard this
	// request would ping-pong forever.
	src := ""
	for i := 0; i < 4096; i++ {
		key := defaultKeyFor(t, shardSrc(i), "dist")
		if r0.Owner(key) == urls[1] && r1.Owner(key) == urls[0] {
			src = shardSrc(i)
			break
		}
	}
	if src == "" {
		t.Fatal("no disagreement key found in 4096 candidates")
	}

	_, out, hdr := postURL(t, urls[0], OptimizeRequest{Source: src, Level: "dist"})
	if out.ILOC == "" {
		t.Fatal("empty result")
	}
	if by := hdr.Get(servedByHeader); by != urls[1] {
		t.Errorf("served-by = %q, want %q", by, urls[1])
	}
	m0, m1 := servers[0].Metrics(), servers[1].Metrics()
	if m0.Get("peer_forwards") != 1 {
		t.Errorf("peer 0 forwards = %d, want 1", m0.Get("peer_forwards"))
	}
	// The guard: peer 1 computed locally instead of forwarding back.
	if m1.Get("peer_forwards") != 0 {
		t.Errorf("peer 1 forwarded a forwarded request (%d times): loop guard broken", m1.Get("peer_forwards"))
	}
	if m1.Get("cache_misses") != 1 {
		t.Errorf("peer 1 cache_misses = %d, want 1", m1.Get("cache_misses"))
	}
}

// TestPeerDownFallback: when the ring owner is unreachable the request
// is served locally (no lost requests), the forward-error counter ticks,
// and /healthz?probe=1 reports the peer unreachable with its last error.
func TestPeerDownFallback(t *testing.T) {
	// A listener that is immediately closed: a real address that refuses
	// connections.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + dead.Addr().String()
	dead.Close()

	servers, urls := startPeers(t, 1, func(i int, urls []string) Config {
		return Config{Peers: []string{urls[0], deadURL}, Self: urls[0]}
	})
	s := servers[0]
	ring := NewRing([]string{urls[0], deadURL}, DefaultVnodes)

	// Find a key the dead peer owns.
	src := ""
	for i := 0; i < 4096; i++ {
		if ring.Owner(defaultKeyFor(t, shardSrc(i), "dist")) == deadURL {
			src = shardSrc(i)
			break
		}
	}
	if src == "" {
		t.Fatal("no key owned by the dead peer in 4096 candidates")
	}

	_, out, hdr := postURL(t, urls[0], OptimizeRequest{Source: src, Level: "dist"})
	if out.ILOC == "" {
		t.Fatal("empty result")
	}
	if by := hdr.Get(servedByHeader); by != "" {
		t.Errorf("response claims to be relayed from %q", by)
	}
	m := s.Metrics()
	if m.Get("peer_forward_errors") != 1 {
		t.Errorf("peer_forward_errors = %d, want 1", m.Get("peer_forward_errors"))
	}
	if m.Get("cache_misses") != 1 {
		t.Errorf("cache_misses = %d, want 1 (served locally)", m.Get("cache_misses"))
	}

	// Health: the probe marks the dead peer unreachable.
	resp, err := http.Get(urls[0] + "/healthz?probe=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status string       `json:"status"`
		Self   string       `json:"self"`
		Ring   []string     `json:"ring"`
		Peers  []PeerStatus `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Self != urls[0] {
		t.Errorf("health = %+v", health)
	}
	if len(health.Ring) != 2 {
		t.Errorf("ring = %v, want both peers", health.Ring)
	}
	if len(health.Peers) != 1 {
		t.Fatalf("peers = %+v, want just the dead peer", health.Peers)
	}
	p := health.Peers[0]
	if p.URL != deadURL || p.Reachable || !p.Contacted || p.LastError == "" {
		t.Errorf("dead peer status = %+v", p)
	}
	if p.Forwards != 1 || p.ForwardErrors != 1 {
		t.Errorf("dead peer forwards/errors = %d/%d, want 1/1", p.Forwards, p.ForwardErrors)
	}
}
