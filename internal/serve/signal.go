package serve

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// NotifyContext returns a context cancelled on SIGINT or SIGTERM — the
// daemon passes it to Run, making signal arrival the graceful-drain
// trigger.  The returned stop function releases the signal registration
// (after which a second signal kills the process, the conventional
// fast-exit escape hatch).
func NotifyContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
