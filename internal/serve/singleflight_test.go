package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestSingleFlightDeterministic pins the dedup path open with the
// computeGate hook: the leader's computation blocks until every
// follower has provably joined the in-flight table (observed via
// FlightWaiters), so `singleflight_shared` is asserted exactly — no
// timing luck, no flakes on fast machines.
func TestSingleFlightDeterministic(t *testing.T) {
	const followers = 6
	s := newServer(t, Config{Workers: 2})
	gateDone := make(chan struct{})
	s.computeGate = func(key string) {
		defer close(gateDone)
		deadline := time.Now().Add(10 * time.Second)
		for s.cache.FlightWaiters(key) < followers {
			if time.Now().After(deadline) {
				return // the assertions below will report the failure
			}
			time.Sleep(time.Millisecond)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(OptimizeRequest{Source: serveSrc, Level: "dist"})
	post := func() (OptimizeResponse, error) {
		resp, err := ts.Client().Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
		if err != nil {
			return OptimizeResponse{}, err
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return OptimizeResponse{}, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
		}
		var out OptimizeResponse
		return out, json.Unmarshal(raw, &out)
	}

	var wg sync.WaitGroup
	results := make([]OptimizeResponse, followers+1)
	errs := make([]error, followers+1)
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = post()
		}(i)
	}
	wg.Wait()
	select {
	case <-gateDone:
	default:
		t.Fatal("computeGate never ran: no cache miss happened")
	}

	var leaders, sharedN int
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		switch {
		case results[i].Shared:
			sharedN++
		case !results[i].Cached:
			leaders++
		}
		if results[i].ILOC != results[0].ILOC || results[i].Key != results[0].Key {
			t.Errorf("request %d returned different bytes", i)
		}
	}
	if leaders != 1 {
		t.Errorf("leaders = %d, want exactly 1", leaders)
	}
	if sharedN != followers {
		t.Errorf("shared responses = %d, want %d", sharedN, followers)
	}
	m := s.Metrics()
	if got := m.Get("singleflight_shared"); got != followers {
		t.Errorf("singleflight_shared = %d, want %d", got, followers)
	}
	if got := m.Get("cache_misses"); got != 1 {
		t.Errorf("cache_misses = %d, want 1", got)
	}
}
