package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
)

// maxBodyBytes bounds any request body.
const maxBodyBytes = 64 << 20

// OptimizeRequest is the POST /optimize body (and one item of a
// /optimize/batch request).
type OptimizeRequest struct {
	// Source is Mini-Fortran, PL/0, or textual ILOC.
	Source string `json:"source"`
	// Lang forces the source language: "mf", "pl0" or "iloc".  Empty
	// means detect from the source's leading keyword.  The resolved
	// language is a cache-key dimension: the same canonical ILOC
	// arriving through two front ends occupies two cache slots.
	Lang string `json:"lang,omitempty"`
	// Format is the legacy spelling of Lang, kept for old clients; Lang
	// wins when both are set.
	Format string `json:"format,omitempty"`
	// Level is the optimization level name (default "reassoc").
	Level string `json:"level,omitempty"`
	// GVN selects the value-numbering backend: "awz" (default) or
	// "precise".  The backend is a cache-key dimension — each backend
	// has its own pipeline version, so results never cross over.
	GVN string `json:"gvn,omitempty"`
	// PRE selects the redundancy-elimination backend: "drechsler"
	// (default), "lcm" or "lospre".  Like GVN it is a cache-key
	// dimension via the per-combination pipeline version.
	PRE string `json:"pre,omitempty"`
	// Check runs the optimization in checked mode: every pass is
	// validated by the internal/check analyzers and the diagnostics are
	// returned.
	Check bool `json:"check,omitempty"`
	// Run optionally interprets the optimized program.
	Run *RunSpec `json:"run,omitempty"`
}

// RunSpec asks the service to interpret the optimized program.
type RunSpec struct {
	// Fn is the function to call (required).
	Fn string `json:"fn"`
	// Args are the call arguments, one per parameter, written like the
	// CLI's -args values: "42" is an integer, "4.2" a float.
	Args []string `json:"args,omitempty"`
}

// RunResult reports one interpretation.
type RunResult struct {
	Result     string   `json:"result"`
	DynamicOps int64    `json:"dynamic_ops"`
	Output     []string `json:"output,omitempty"`
}

// OptimizeResponse is the POST /optimize reply.
type OptimizeResponse struct {
	// Key is the content-addressed cache key of this result.
	Key string `json:"key"`
	// Cached reports that the result came from the in-memory cache;
	// Shared that this request coalesced onto a concurrent identical
	// one; DiskCached that the persistent store answered it without
	// recomputation.
	Cached     bool   `json:"cached"`
	Shared     bool   `json:"shared,omitempty"`
	DiskCached bool   `json:"disk_cached,omitempty"`
	Level      string `json:"level"`
	// Lang is the resolved source language ("mf", "pl0" or "iloc").
	Lang string `json:"lang"`
	// GVN is the value-numbering backend the result was produced with.
	GVN string `json:"gvn"`
	// PRE is the redundancy-elimination backend the result was
	// produced with.
	PRE string `json:"pre"`
	// ILOC is the optimized program.
	ILOC      string `json:"iloc"`
	StaticOps int    `json:"static_ops"`
	// Diagnostics are the checker findings (checked mode only; empty
	// means the optimization validated cleanly).
	Diagnostics []string   `json:"diagnostics,omitempty"`
	Run         *RunResult `json:"run,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// handleOptimize is the single-program endpoint: decode, route (local
// or forwarded to the ring owner), serve, encode.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.metrics.requests.Add(1)
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	var req OptimizeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	spec, err := s.prepare(&req)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()

	// Sharding: a key owned by another peer is forwarded there — unless
	// this request was already forwarded once (the loop guard header),
	// in which case it is served locally no matter what our ring says.
	// A transport-level forwarding failure falls back to serving
	// locally: worse aggregate cache efficiency, but no lost requests
	// while a peer is down.
	if owner, local := s.ownerOf(spec.key); !local && r.Header.Get(forwardHeader) == "" {
		status, hdr, respBody, ferr := s.peers.forward(ctx, owner, "/optimize", body)
		if ferr == nil {
			s.metrics.peerForwards.Add(1)
			relay(w, status, hdr, respBody, owner)
			return
		}
		s.metrics.peerForwardErrors.Add(1)
	}

	res, out, err := s.serveLocal(ctx, spec, false)
	if err != nil {
		s.failStatus(w, err)
		return
	}
	resp, err := s.respond(ctx, spec, res, out)
	if err != nil {
		s.failStatus(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// relay copies a forwarded peer's response through verbatim, tagging
// which peer served it.
func relay(w http.ResponseWriter, status int, hdr http.Header, body []byte, owner string) {
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if by := hdr.Get(servedByHeader); by != "" {
		w.Header().Set(servedByHeader, by)
	} else {
		w.Header().Set(servedByHeader, owner)
	}
	w.WriteHeader(status)
	w.Write(body)
}

// failStatus maps a serving error onto its transport status and
// counters: load shedding → 503, deadline → 504, anything else → 422
// (the request was well-formed but the optimization failed).
func (s *Server) failStatus(w http.ResponseWriter, err error) {
	switch status := statusFor(err); status {
	case http.StatusServiceUnavailable:
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		s.failQuiet(w, status, err)
	case http.StatusGatewayTimeout:
		s.metrics.timeouts.Add(1)
		s.failQuiet(w, status, err)
	default:
		s.fail(w, status, err)
	}
}

// statusFor classifies a serving error (shared with the batch
// endpoint's per-item statuses).
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrPoolClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusUnprocessableEntity
	}
}

// handleHealthz reports liveness (503 while draining) and, on a sharded
// server, per-peer ring health.  `?probe=1` actively probes every peer
// within a short deadline before reporting.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if s.peers == nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		return
	}
	if r.URL.Query().Get("probe") == "1" {
		ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
		s.peers.probeAll(ctx)
		cancel()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"self":   s.cfg.Self,
		"ring":   s.ring.Nodes(),
		"peers":  s.peers.statuses(),
	})
}

// handleLevels lists the optimization levels and their pass sequences,
// plus the individually runnable passes (sorted by name) and the
// pipeline version — the service's self-description.
func (s *Server) handleLevels(w http.ResponseWriter, r *http.Request) {
	type levelInfo struct {
		Name   string   `json:"name"`
		Passes []string `json:"passes"`
	}
	var levels []levelInfo
	for _, l := range core.Levels {
		levels = append(levels, levelInfo{Name: string(l), Passes: core.PassNames(l)})
	}
	var passes []string
	for _, p := range core.AllPasses() {
		passes = append(passes, p.Name)
	}
	sort.Strings(passes)
	gvnVersions := make(map[string]string, len(core.GVNBackends))
	for _, g := range core.GVNBackends {
		gvnVersions[string(g)] = s.versions[backendPair{g, core.PREDrechsler}]
	}
	preVersions := make(map[string]string, len(core.PREBackends))
	for _, p := range core.PREBackends {
		preVersions[string(p)] = s.versions[backendPair{core.GVNAWZ, p}]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version":      s.version,
		"levels":       levels,
		"passes":       passes,
		"gvn_backends": gvnVersions,
		"pre_backends": preVersions,
	})
}

// runProgram interprets the optimized program under the request
// deadline.
func runProgram(ctx context.Context, prog *ir.Program, spec *RunSpec) (*RunResult, error) {
	if spec.Fn == "" {
		return nil, errors.New("run: missing fn")
	}
	args, err := parseArgs(spec.Args)
	if err != nil {
		return nil, err
	}
	m := interp.NewMachine(prog)
	m.SetContext(ctx)
	v, err := m.Call(spec.Fn, args...)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(m.Output))
	for i, o := range m.Output {
		out[i] = o.String()
	}
	return &RunResult{Result: v.String(), DynamicOps: m.Steps, Output: out}, nil
}

// parseSource compiles a source through the language registry,
// verified either way, and reports the canonical language name.  An
// empty name detects from the source's leading keyword.
func parseSource(src, name string) (*ir.Program, string, error) {
	return lang.Compile(src, name)
}

// parseArgs converts CLI-style argument strings ("42" int, "4.2"
// float) into interpreter values.
func parseArgs(specs []string) ([]interp.Value, error) {
	vals := make([]interp.Value, 0, len(specs))
	for _, tok := range specs {
		tok = strings.TrimSpace(tok)
		if strings.ContainsAny(tok, ".eE") {
			f, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return nil, fmt.Errorf("bad argument %q", tok)
			}
			vals = append(vals, interp.FloatVal(f))
		} else {
			i, err := strconv.ParseInt(tok, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad argument %q", tok)
			}
			vals = append(vals, interp.IntVal(i))
		}
	}
	return vals, nil
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.metrics.errors.Add(1)
	s.failQuiet(w, status, err)
}

// failQuiet writes an error response without bumping the error counter
// (load shedding and timeouts have their own counters).
func (s *Server) failQuiet(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
