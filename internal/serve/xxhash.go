package serve

import (
	"encoding/binary"
	"math/bits"
)

// xxHash64 (XXH64, seed 0), implemented from the published algorithm so
// the ring needs no dependency outside the standard library.  The ring
// hashes short ASCII strings (peer URLs with vnode suffixes, 64-char
// hex cache keys), where XXH64's avalanche quality keeps vnode
// positions uniform; correctness is pinned against the reference
// vectors in xxhash_test.go.

const (
	xxPrime1 uint64 = 11400714785074694791
	xxPrime2 uint64 = 14029467366897019727
	xxPrime3 uint64 = 1609587929392839161
	xxPrime4 uint64 = 9650029242287828579
	xxPrime5 uint64 = 2870177450012600261
)

func xxRound(acc, input uint64) uint64 {
	acc += input * xxPrime2
	acc = bits.RotateLeft64(acc, 31)
	acc *= xxPrime1
	return acc
}

func xxMergeRound(h, v uint64) uint64 {
	h ^= xxRound(0, v)
	h = h*xxPrime1 + xxPrime4
	return h
}

// xxhash64 returns XXH64(b) with seed 0.
func xxhash64(b []byte) uint64 {
	n := uint64(len(b))
	var h uint64
	if len(b) >= 32 {
		v1 := xxPrime1
		v1 += xxPrime2 // wrapping add; the constant sum overflows untyped arithmetic
		v2 := xxPrime2
		v3 := uint64(0)
		v4 := uint64(0)
		v4 -= xxPrime1
		for len(b) >= 32 {
			v1 = xxRound(v1, binary.LittleEndian.Uint64(b[0:8]))
			v2 = xxRound(v2, binary.LittleEndian.Uint64(b[8:16]))
			v3 = xxRound(v3, binary.LittleEndian.Uint64(b[16:24]))
			v4 = xxRound(v4, binary.LittleEndian.Uint64(b[24:32]))
			b = b[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = xxMergeRound(h, v1)
		h = xxMergeRound(h, v2)
		h = xxMergeRound(h, v3)
		h = xxMergeRound(h, v4)
	} else {
		h = xxPrime5
	}
	h += n
	for len(b) >= 8 {
		h ^= xxRound(0, binary.LittleEndian.Uint64(b[:8]))
		h = bits.RotateLeft64(h, 27)*xxPrime1 + xxPrime4
		b = b[8:]
	}
	if len(b) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(b[:4])) * xxPrime1
		h = bits.RotateLeft64(h, 23)*xxPrime2 + xxPrime3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * xxPrime5
		h = bits.RotateLeft64(h, 11) * xxPrime1
	}
	h ^= h >> 33
	h *= xxPrime2
	h ^= h >> 29
	h *= xxPrime3
	h ^= h >> 32
	return h
}

// xxhash64String is xxhash64 without forcing the caller to copy the
// string into a byte slice first.
func xxhash64String(s string) uint64 {
	// The compiler does not eliminate this copy across the package
	// boundary of binary.LittleEndian, but ring construction and key
	// lookup hash short strings, so the copy is cheap and keeps the
	// implementation obviously correct.
	return xxhash64([]byte(s))
}
