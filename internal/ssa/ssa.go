// Package ssa builds and destroys static single assignment form.
//
// Construction follows Cytron, Ferrante, Rosen, Wegman and Zadeck
// (TOPLAS 1991) with the liveness pruning of Choi, Cytron and Ferrante
// — the paper's §3.1 "our first step is to build the pruned SSA form of
// the routine".  As the paper prescribes, ordinary copies are removed
// during the renaming step, "effectively folding them into φ-nodes",
// which severs the optimizer's dependence on the programmer's choice of
// variable names (§2.2).
//
// Destruction replaces each φ-node with copies in the predecessor
// blocks (splitting critical edges first) and sequentializes the
// parallel copies on each edge correctly, including the swap/lost-copy
// cases.
package ssa

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/ir"
)

// BuildOptions configure SSA construction.
type BuildOptions struct {
	// Prune uses liveness to avoid dead φ-nodes (pruned SSA).  The
	// paper notes minimal SSA "would have required many more φ-nodes".
	Prune bool
	// FoldCopies removes copy instructions during renaming, folding
	// them into φ-nodes (paper §3.1).
	FoldCopies bool
}

// Build converts f to SSA form in place.  Every definition gets a fresh
// register; φ-nodes appear at iterated dominance frontiers.  Uses of
// registers with no reaching definition are wired to a zero constant
// materialized in the entry block (our front end never produces such
// uses; hand-written ILOC might).
func Build(f *ir.Func, opt BuildOptions) {
	BuildWith(f, opt, analysis.NewCache(f))
}

// BuildWith is Build drawing its dominator tree and liveness from the
// given analysis cache, so construction reuses results that are still
// valid from earlier passes.
func BuildWith(f *ir.Func, opt BuildOptions, ac *analysis.Cache) {
	ac.RemoveUnreachable()
	dom := ac.DomTree()

	nr := f.NumRegs()
	defBlocks := make([][]*ir.Block, nr) // blocks defining each register
	hasDef := ac.BorrowBools(nr)
	defer ac.ReturnBools(hasDef)
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			in := b.Instr(ii)
			if in.Dst != ir.NoReg {
				defBlocks[in.Dst] = append(defBlocks[in.Dst], b)
				hasDef[in.Dst] = true
			}
			if in.Op == ir.OpEnter {
				for _, p := range in.Args {
					defBlocks[p] = append(defBlocks[p], b)
					hasDef[p] = true
				}
			}
		}
	}

	var lv *dataflow.Liveness
	if opt.Prune {
		lv = ac.Liveness()
	}

	// Insert φ-nodes at iterated dominance frontiers.  The per-variable
	// placed/on-worklist sets are generation-stamped block tables
	// borrowed from the analysis arena — one pair of []int serves every
	// register instead of two fresh maps each.
	phiFor := map[*ir.Instr]ir.Reg{} // φ instr → original variable
	nb := len(f.Blocks)
	placedAt := ac.BorrowInts(nb)
	onWorkAt := ac.BorrowInts(nb)
	work := ac.BorrowBlocks(nb)[:0]
	for i := range placedAt {
		placedAt[i] = -1
		onWorkAt[i] = -1
	}
	for v := ir.Reg(1); int(v) < nr; v++ {
		if !hasDef[v] {
			continue
		}
		gen := int(v)
		work = append(work[:0], defBlocks[v]...)
		for _, b := range work {
			onWorkAt[b.ID] = gen
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, d := range dom.Frontier(b) {
				if placedAt[d.ID] == gen {
					continue
				}
				if opt.Prune && !lv.LiveIn[d.ID].Has(int(v)) {
					continue
				}
				placedAt[d.ID] = gen
				phi := f.NewPhi(v, len(d.Preds))
				for i := range phi.Args {
					phi.Args[i] = v
				}
				d.InsertAt(0, phi)
				phiFor[phi] = v
				if onWorkAt[d.ID] != gen {
					onWorkAt[d.ID] = gen
					work = append(work, d)
				}
			}
		}
	}
	ac.ReturnInts(placedAt)
	ac.ReturnInts(onWorkAt)
	ac.ReturnBlocks(work)

	// Rename with a dominator-tree walk.  tops[v] is the innermost SSA
	// name for v (NoReg when v has no binding); shadowed bindings live
	// in the undo log rather than per-register stacks, so renaming
	// allocates nothing per register.
	tops := make([]ir.Reg, nr)
	var undef ir.Reg // lazily created zero register for undefined uses

	top := func(v ir.Reg) ir.Reg {
		s := tops[v]
		if s == ir.NoReg {
			if undef == ir.NoReg {
				undef = f.NewReg()
				entry := f.Entry()
				pos := 0
				if entry.Instr(0).Op == ir.OpEnter {
					pos = 1
				}
				entry.InsertAt(pos, f.NewLoadI(undef, 0))
			}
			return undef
		}
		return s
	}

	// undoLog records, across the whole dominator-tree walk, each
	// binding that a push displaced; a block's exit restores its own
	// suffix.  This replaces a per-block map of push counts with one
	// shared slice that the recursion indexes by position.
	type savedBinding struct{ v, prev ir.Reg }
	var undoLog []savedBinding
	var rename func(b *ir.Block)
	rename = func(b *ir.Block) {
		undoMark := len(undoLog)
		push := func(v, nv ir.Reg) {
			undoLog = append(undoLog, savedBinding{v, tops[v]})
			tops[v] = nv
		}

		kept := b.Instrs[:0]
		for _, id := range b.Instrs {
			in := f.Instr(id)
			switch in.Op {
			case ir.OpPhi:
				v := in.Dst
				nv := f.NewReg()
				in.Dst = nv
				push(v, nv)
				kept = append(kept, id)
				continue
			case ir.OpEnter:
				for i, p := range in.Args {
					nv := f.NewReg()
					in.Args[i] = nv
					push(p, nv)
					if i < len(f.Params) {
						f.Params[i] = nv
					}
				}
				kept = append(kept, id)
				continue
			case ir.OpCopy:
				if opt.FoldCopies {
					// Fold: the copy target becomes an alias of the
					// (already renamed) source.
					src := top(in.Args[0])
					push(in.Dst, src)
					continue // drop the copy
				}
			}
			for i, a := range in.Args {
				in.Args[i] = top(a)
			}
			if in.Dst != ir.NoReg {
				v := in.Dst
				nv := f.NewReg()
				in.Dst = nv
				push(v, nv)
			}
			kept = append(kept, id)
		}
		b.Instrs = kept

		for _, s := range b.Succs {
			pi := s.PredIndex(b)
			for _, pid := range s.Phis() {
				phi := f.Instr(pid)
				v := phiFor[phi]
				if v == ir.NoReg {
					continue
				}
				phi.Args[pi] = top(v)
			}
		}
		for _, c := range dom.Children(b) {
			rename(c)
		}
		for i := len(undoLog) - 1; i >= undoMark; i-- {
			e := undoLog[i]
			tops[e.v] = e.prev
		}
		undoLog = undoLog[:undoMark]
	}
	rename(f.Entry())
	// Renaming rewrites instruction slices in place; record the code
	// mutation so cached liveness is rebuilt.
	f.MarkCodeMutated()
}

// Destruct removes φ-nodes by inserting copies in predecessor blocks.
// This is the operation of the paper's Figure 5 ("φ-nodes are
// eliminated by inserting copies"; "if necessary, the entering edges
// are split and appropriate predecessor blocks are created").
//
// A copy for the edge p→s normally lands at the end of p.  When p has
// several successors the edge is critical and would need splitting —
// but if every copy destination is dead along p's other out-edges, the
// copies can still sit at the end of p, executing harmlessly on the
// other paths.  That placement is what lets a bottom-test loop keep
// its body in one block, so that after coalescing erases the copies
// the loop looks like the paper's Figure 10 rather than paying a jump
// through a latch block every iteration.  Only when a destination is
// live on another out-edge does the edge get split.
//
// All copies placed at the end of one predecessor form a single
// parallel copy, sequentialized with a temporary when they form a
// cycle (the classic swap problem).
func Destruct(f *ir.Func) {
	DestructWith(f, analysis.NewCache(f))
}

// DestructWith is Destruct drawing liveness from the given analysis
// cache.
func DestructWith(f *ir.Func, ac *analysis.Cache) {
	lv := ac.Liveness()

	type edgeCopies struct {
		dsts, srcs []ir.Reg
	}
	// inline[p] accumulates copies to place at the end of block p.
	inline := map[*ir.Block]*edgeCopies{}
	type splitJob struct {
		p, s       *ir.Block
		dsts, srcs []ir.Reg
	}
	var splits []splitJob

	// Snapshot every block's φ-nodes before any mutation, then delete
	// them; placement decisions below consult the snapshot.  Arena IDs
	// stay readable through f.Instr after removal from the block.
	phiSnap := map[*ir.Block][]ir.InstrID{}
	for _, b := range f.Blocks {
		if phis := b.Phis(); len(phis) > 0 {
			phiSnap[b] = append([]ir.InstrID(nil), phis...)
			b.Instrs = b.Instrs[len(phis):]
		}
	}
	if len(phiSnap) > 0 {
		// The slice rewrites above bypass the Block helpers.
		f.MarkCodeMutated()
	}

	// liveOnOtherEdge reports whether d is needed along some other
	// out-edge of p than p→s: live into that successor, or read by one
	// of its φ-nodes through p's operand slot.
	liveOnOtherEdge := func(p, s *ir.Block, d ir.Reg) bool {
		for _, t := range p.Succs {
			if t == s {
				continue
			}
			if lv.LiveIn[t.ID].Has(int(d)) {
				return true
			}
			pi := t.PredIndex(p)
			for _, pid := range phiSnap[t] {
				phi := f.Instr(pid)
				if pi >= 0 && pi < len(phi.Args) && phi.Args[pi] == d {
					return true
				}
			}
		}
		return false
	}

	for _, b := range f.Blocks {
		phis := phiSnap[b]
		if len(phis) == 0 {
			continue
		}
		for pi, p := range b.Preds {
			var dsts, srcs []ir.Reg
			for _, pid := range phis {
				phi := f.Instr(pid)
				if phi.Dst != phi.Args[pi] {
					dsts = append(dsts, phi.Dst)
					srcs = append(srcs, phi.Args[pi])
				}
			}
			if len(dsts) == 0 {
				continue
			}
			canInline := true
			if len(p.Succs) > 1 {
				for _, d := range dsts {
					if liveOnOtherEdge(p, b, d) {
						canInline = false
						break
					}
				}
			}
			if canInline {
				ec := inline[p]
				if ec == nil {
					ec = &edgeCopies{}
					inline[p] = ec
				}
				ec.dsts = append(ec.dsts, dsts...)
				ec.srcs = append(ec.srcs, srcs...)
			} else {
				splits = append(splits, splitJob{p: p, s: b, dsts: dsts, srcs: srcs})
			}
		}
	}

	// Flush in deterministic block order: sequentialization may
	// allocate temporaries, and register numbering must not depend on
	// map iteration order (it feeds sorting tie-breaks downstream).
	inlineBlocks := make([]*ir.Block, 0, len(inline))
	for p := range inline {
		inlineBlocks = append(inlineBlocks, p)
	}
	sort.Slice(inlineBlocks, func(i, j int) bool { return inlineBlocks[i].ID < inlineBlocks[j].ID })
	for _, p := range inlineBlocks {
		ec := inline[p]
		for _, c := range SequentializeParallelCopy(f, ec.dsts, ec.srcs) {
			p.Append(c)
		}
	}
	for _, job := range splits {
		mid := cfg.SplitEdge(job.p, job.s)
		for _, c := range SequentializeParallelCopy(f, job.dsts, job.srcs) {
			mid.Append(c)
		}
	}
}

// SequentializeParallelCopy orders the parallel copy dsts[i] ← srcs[i]
// into a sequence of copy instructions, introducing a temporary
// register to break cycles (the classic swap problem).
func SequentializeParallelCopy(f *ir.Func, dsts, srcs []ir.Reg) []*ir.Instr {
	var out []*ir.Instr
	// pending maps dst → src.
	pending := map[ir.Reg]ir.Reg{}
	uses := map[ir.Reg]int{} // how many pending copies read this reg
	for i, d := range dsts {
		pending[d] = srcs[i]
		uses[srcs[i]]++
	}
	// Ready: destinations no pending copy reads.  Iterate the dsts
	// slice (not the map) so the emitted copy order is deterministic.
	var ready []ir.Reg
	for _, d := range dsts {
		if _, isPending := pending[d]; isPending && uses[d] == 0 {
			ready = append(ready, d)
		}
	}
	for len(pending) > 0 {
		for len(ready) > 0 {
			d := ready[len(ready)-1]
			ready = ready[:len(ready)-1]
			s, ok := pending[d]
			if !ok {
				continue
			}
			out = append(out, f.NewCopy(d, s))
			delete(pending, d)
			uses[s]--
			if uses[s] == 0 {
				if _, isDst := pending[s]; isDst {
					ready = append(ready, s)
				}
			}
		}
		if len(pending) == 0 {
			break
		}
		// Only cycles remain; break one with a temporary.  Pick the
		// smallest destination for determinism.
		var d ir.Reg = -1
		for k := range pending {
			if d < 0 || k < d {
				d = k
			}
		}
		tmp := f.NewReg()
		out = append(out, f.NewCopy(tmp, d))
		for k, s := range pending {
			if s == d {
				uses[d]--
				pending[k] = tmp
				uses[tmp]++
			}
		}
		if uses[d] == 0 {
			ready = append(ready, d)
		}
	}
	return out
}
