package ssa_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/ssa"
)

// loopFunc is the paper's Figure 3 shape.
const loopFunc = `
func foo(r1, r2) {
b0:
    enter(r1, r2)
    loadI 0 => r3
    add r1, r2 => r4
    copy r4 => r5
    loadI 100 => r6
    cmpGT r5, r6 => r7
    cbr r7 -> b3, b1
b1:
    loadI 1 => r8
    add r8, r3 => r9
    add r9, r4 => r10
    copy r10 => r3
    loadI 1 => r11
    add r5, r11 => r12
    copy r12 => r5
    loadI 100 => r13
    cmpLE r5, r13 => r14
    cbr r14 -> b1, b2
b2:
    jump -> b3
b3:
    ret r3
}
`

func runFoo(t *testing.T, f *ir.Func, y, z int64) int64 {
	t.Helper()
	m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{f.Clone()}})
	v, err := m.Call("foo", interp.IntVal(y), interp.IntVal(z))
	if err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	return v.I
}

// checkSSAInvariants verifies single assignment and def-dominates-use.
func checkSSAInvariants(t *testing.T, f *ir.Func) {
	t.Helper()
	defs := map[ir.Reg]int{}
	defBlock := map[ir.Reg]*ir.Block{}
	defIdx := map[ir.Reg]int{}
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpEnter {
			for _, p := range in.Args {
				defs[p]++
				defBlock[p] = b
				defIdx[p] = i
			}
			return
		}
		if in.Dst != ir.NoReg {
			defs[in.Dst]++
			defBlock[in.Dst] = b
			defIdx[in.Dst] = i
		}
	})
	for r, n := range defs {
		if n != 1 {
			t.Errorf("register %s has %d definitions\n%s", r, n, f)
		}
	}
	dom := cfg.BuildDomTree(f)
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpEnter {
			return
		}
		if in.Op == ir.OpPhi {
			// φ operand defs must dominate the corresponding pred end.
			for pi, a := range in.Args {
				db := defBlock[a]
				if db == nil {
					t.Errorf("φ operand %s undefined", a)
					continue
				}
				if pi < len(b.Preds) && !dom.Dominates(db, b.Preds[pi]) {
					t.Errorf("φ operand %s def in %s does not dominate pred %s", a, db.Name, b.Preds[pi].Name)
				}
			}
			return
		}
		for _, a := range in.Args {
			db := defBlock[a]
			if db == nil {
				t.Errorf("use of undefined register %s in %s", a, b.Name)
				continue
			}
			if db == b {
				if defIdx[a] >= i {
					t.Errorf("use of %s in %s before its definition", a, b.Name)
				}
			} else if !dom.Dominates(db, b) {
				t.Errorf("def of %s in %s does not dominate use in %s\n%s", a, db.Name, b.Name, f)
			}
		}
	})
}

func TestBuildProducesValidSSA(t *testing.T) {
	f := ir.MustParseFunc(loopFunc)
	want := runFoo(t, f, 1, 2)
	ssa.Build(f, ssa.BuildOptions{Prune: true, FoldCopies: true})
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	checkSSAInvariants(t, f)
	if got := runFoo(t, f, 1, 2); got != want {
		t.Errorf("SSA changed semantics: %d vs %d", got, want)
	}
	// Copy folding must have removed all copies.
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpCopy {
			t.Errorf("copy survived folding: %s", f.InstrString(in))
		}
	})
	// Pruned SSA for this function needs φs for s and i in the loop
	// header and for s at the exit join (or fewer after pruning).
	phis := 0
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpPhi {
			phis++
		}
	})
	if phis < 2 || phis > 4 {
		t.Errorf("unexpected φ count %d\n%s", phis, f)
	}
}

func TestBuildWithoutPruning(t *testing.T) {
	f := ir.MustParseFunc(loopFunc)
	want := runFoo(t, f, 5, 6)
	ssa.Build(f, ssa.BuildOptions{Prune: false, FoldCopies: false})
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	checkSSAInvariants(t, f)
	if got := runFoo(t, f, 5, 6); got != want {
		t.Errorf("semantics changed: %d vs %d", got, want)
	}
}

func TestDestructRoundTrip(t *testing.T) {
	for _, in := range [][2]int64{{1, 2}, {50, 50}, {200, 0}} {
		f := ir.MustParseFunc(loopFunc)
		want := runFoo(t, f, in[0], in[1])
		ssa.Build(f, ssa.BuildOptions{Prune: true, FoldCopies: true})
		ssa.Destruct(f)
		if err := ir.Verify(f); err != nil {
			t.Fatal(err)
		}
		f.ForEachInstr(func(b *ir.Block, i int, instr *ir.Instr) {
			if instr.Op == ir.OpPhi {
				t.Errorf("φ survived destruction")
			}
		})
		if got := runFoo(t, f, in[0], in[1]); got != want {
			t.Errorf("foo(%d,%d) = %d, want %d", in[0], in[1], got, want)
		}
	}
}

// TestSwapProblemExplicit checks the parallel-copy cycle: two φs that
// swap values around a loop.  Naive per-φ copy insertion computes one
// side with the already-overwritten value.
func TestSwapProblemExplicit(t *testing.T) {
	const swap = `
func swap(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    copy r1 => r4
    copy r2 => r5
    loadI 0 => r6
    jump -> b1
b1:
    copy r4 => r7
    copy r5 => r4
    copy r7 => r5
    loadI 1 => r8
    add r6, r8 => r6
    cmpLT r6, r3 => r9
    cbr r9 -> b1, b2
b2:
    loadI 1000 => r10
    mul r4, r10 => r11
    add r11, r5 => r12
    ret r12
}
`
	ref := func(a, b, n int64) int64 {
		for i := int64(0); i < n; i++ {
			a, b = b, a
		}
		return a*1000 + b
	}
	run := func(f *ir.Func, a, b, n int64) int64 {
		m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{f.Clone()}})
		v, err := m.Call("swap", interp.IntVal(a), interp.IntVal(b), interp.IntVal(n))
		if err != nil {
			t.Fatalf("%v\n%s", err, f)
		}
		return v.I
	}
	for _, n := range []int64{1, 2, 3, 8} {
		f := ir.MustParseFunc(swap)
		want := ref(1, 2, n)
		if got := run(f, 1, 2, n); got != want {
			t.Fatalf("sanity: swap(1,2,%d) = %d, want %d", n, got, want)
		}
		ssa.Build(f, ssa.BuildOptions{Prune: true, FoldCopies: true})
		checkSSAInvariants(t, f)
		ssa.Destruct(f)
		if err := ir.Verify(f); err != nil {
			t.Fatal(err)
		}
		if got := run(f, 1, 2, n); got != want {
			t.Errorf("after SSA round trip: swap(1,2,%d) = %d, want %d\n%s", n, got, want, f)
		}
	}
}

func TestSequentializeParallelCopy(t *testing.T) {
	f := ir.NewFunc("f", 0)
	for i := 0; i < 10; i++ {
		f.NewReg()
	}
	cases := []struct {
		dsts, srcs []ir.Reg
	}{
		{[]ir.Reg{1}, []ir.Reg{2}},                   // simple
		{[]ir.Reg{1, 2}, []ir.Reg{2, 1}},             // swap
		{[]ir.Reg{1, 2, 3}, []ir.Reg{2, 3, 1}},       // 3-cycle
		{[]ir.Reg{1, 2, 3, 4}, []ir.Reg{2, 1, 4, 3}}, // two swaps
		{[]ir.Reg{1, 2, 3}, []ir.Reg{4, 1, 2}},       // chain
		{[]ir.Reg{1, 2, 3, 5}, []ir.Reg{2, 3, 1, 1}}, // cycle + reader
	}
	for ci, c := range cases {
		copies := ssa.SequentializeParallelCopy(f, c.dsts, c.srcs)
		// Simulate: registers hold their own index initially.
		env := map[ir.Reg]int64{}
		for r := ir.Reg(1); r < 10; r++ {
			env[r] = int64(r)
		}
		for _, cp := range copies {
			env[cp.Dst] = env[cp.Args[0]]
		}
		for i, d := range c.dsts {
			if env[d] != int64(c.srcs[i]) {
				t.Errorf("case %d: %s = %d, want %d (copies: %v)", ci, d, env[d], c.srcs[i], copies)
			}
		}
	}
}
