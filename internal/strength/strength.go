// Package strength implements loop strength reduction — the second
// pass the paper reports missing (§4.1) and discusses at length in
// §5.2: "We expect that strength reduction will improve the code
// beyond the results shown in this paper.  Reassociation should let
// strength reduction introduce fewer distinct induction variables."
// It is provided as an extension so the harness can measure that
// expectation.
//
// The implementation is a deliberately simple induction-variable
// scheme on SSA (in the spirit of the classic Allen–Cocke–Kennedy
// transformation rather than full Cooper–Simpson–Vick OSR):
//
//  1. find basic induction variables — header φs of the form
//     i = φ(init, i ⊕ step) with a region-constant step;
//  2. find multiplications j = i × k (or k × i) inside the loop with a
//     region-constant k;
//  3. replace each with its own derived induction variable
//     j' = φ(init×k, j' + step×k), materializing init×k and step×k in
//     the preheader.
//
// The pass runs on SSA it builds itself and destructs afterwards, like
// the other filters.
package strength

import (
	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/ssa"
)

// Stats reports the reductions performed.
type Stats struct {
	BasicIVs int // basic induction variables found
	Reduced  int // multiplications replaced by derived IVs
}

// Run performs strength reduction on f in place.
func Run(f *ir.Func) Stats {
	return RunWith(f, analysis.NewCache(f))
}

// RunWith is Run drawing CFG analyses (dominators, loops, liveness)
// from the given cache.
func RunWith(f *ir.Func, ac *analysis.Cache) Stats {
	ssa.BuildWith(f, ssa.BuildOptions{Prune: true, FoldCopies: true}, ac)
	st := reduce(f, ac)
	ssa.DestructWith(f, ac)
	return st
}

// ReduceSSA runs the analysis and rewrite on a function already in SSA
// form (for callers composing their own pipelines).
func ReduceSSA(f *ir.Func) Stats { return reduce(f, analysis.NewCache(f)) }

type ivInfo struct {
	phi     *ir.Instr // i = φ(init, next)
	header  *ir.Block
	loop    *cfg.Loop
	initIdx int       // operand index of the init (preheader) input
	backIdx int       // operand index of the back-edge input
	update  *ir.Instr // next = i + step  (or step + i)
	step    ir.Reg    // region-constant step operand
}

func reduce(f *ir.Func, ac *analysis.Cache) Stats {
	var st Stats
	dom := ac.DomTree()
	li := ac.Loops()
	if len(li.Loops) == 0 {
		return st
	}

	defBlock := map[ir.Reg]*ir.Block{}
	defInstr := map[ir.Reg]*ir.Instr{}
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpEnter {
			for _, p := range in.Args {
				defBlock[p] = b
				defInstr[p] = in
			}
			return
		}
		if in.Dst != ir.NoReg {
			defBlock[in.Dst] = b
			defInstr[in.Dst] = in
		}
	})
	// regionConst: defined outside the loop, or a constant (a loadI
	// inside the loop has the same value every iteration and can be
	// re-materialized in the preheader).
	regionConst := func(l *cfg.Loop, r ir.Reg) bool {
		if di := defInstr[r]; di != nil && di.IsConst() {
			return true
		}
		db := defBlock[r]
		return db == nil || !l.Contains(db)
	}

	// Find basic IVs per loop.
	var ivs []ivInfo
	for _, l := range li.Loops {
		h := l.Header
		if len(h.Preds) != 2 {
			continue // one entry edge, one back edge — keep it simple
		}
		for _, phiID := range h.Phis() {
			phi := f.Instr(phiID)
			if len(phi.Args) != 2 {
				continue
			}
			for back := 0; back < 2; back++ {
				initIdx := 1 - back
				backPred := h.Preds[back]
				if !l.Contains(backPred) || l.Contains(h.Preds[initIdx]) {
					continue
				}
				upd := defInstr[phi.Args[back]]
				if upd == nil || upd.Op != ir.OpAdd {
					continue
				}
				var step ir.Reg
				switch {
				case upd.Args[0] == phi.Dst && regionConst(l, upd.Args[1]):
					step = upd.Args[1]
				case upd.Args[1] == phi.Dst && regionConst(l, upd.Args[0]):
					step = upd.Args[0]
				default:
					continue
				}
				ivs = append(ivs, ivInfo{
					phi: phi, header: h, loop: l,
					initIdx: initIdx, backIdx: back,
					update: upd, step: step,
				})
				st.BasicIVs++
			}
		}
	}
	if len(ivs) == 0 {
		return st
	}

	// For each IV, find reducible multiplications in its loop.
	for _, iv := range ivs {
		preheader := iv.header.Preds[iv.initIdx]
		updBlock := defBlock[iv.update.Dst]
		for _, b := range iv.loop.Blocks {
			for idx := 0; idx < len(b.Instrs); idx++ {
				in := b.Instr(idx)
				if in.Op != ir.OpMul {
					continue
				}
				var k ir.Reg
				switch {
				case in.Args[0] == iv.phi.Dst && regionConst(iv.loop, in.Args[1]):
					k = in.Args[1]
				case in.Args[1] == iv.phi.Dst && regionConst(iv.loop, in.Args[0]):
					k = in.Args[0]
				default:
					continue
				}
				// Operands must be usable at the preheader's end:
				// either their definitions dominate it, or they are
				// constants we can re-materialize there.
				kPre, ok1 := materializeAt(f, dom, defBlock, defInstr, k, preheader)
				stepPre, ok2 := materializeAt(f, dom, defBlock, defInstr, iv.step, preheader)
				if !ok1 || !ok2 {
					continue
				}

				// Materialize init×k and step×k in the preheader.
				initMul := f.NewReg()
				preheader.Append(f.NewInstr(ir.OpMul, initMul, iv.phi.Args[iv.initIdx], kPre))
				stepMul := f.NewReg()
				preheader.Append(f.NewInstr(ir.OpMul, stepMul, stepPre, kPre))

				jphi := f.NewReg()
				jnext := f.NewReg()

				// Replace the multiplication with a copy of j' first:
				// the insertions below may shift slice indices.
				b.Instrs[idx] = f.NewCopy(in.Dst, jphi).ID()
				st.Reduced++

				// j' = φ(init×k, j'next) at the header.
				phiArgs := make([]ir.Reg, 2)
				phiArgs[iv.initIdx] = initMul
				phiArgs[iv.backIdx] = jnext
				nphi := f.NewPhi(jphi, 2)
				copy(nphi.Args, phiArgs)
				iv.header.InsertAt(len(iv.header.Phis()), nphi)
				// j'next = j' + step×k, placed right after the IV update.
				for ui, uinID := range updBlock.Instrs {
					uin := updBlock.Fn.Instr(uinID)
					if uin == iv.update {
						updBlock.InsertAt(ui+1, f.NewInstr(ir.OpAdd, jnext, jphi, stepMul))
						break
					}
				}

				// Register the new defs for subsequent queries.
				defBlock[initMul] = preheader
				defBlock[stepMul] = preheader
				defBlock[jphi] = iv.header
				defBlock[jnext] = updBlock
			}
		}
	}
	return st
}

// materializeAt returns a register holding r's value at the end of
// block b: r itself when its definition dominates b, or a freshly
// re-materialized constant appended to b.
func materializeAt(f *ir.Func, dom *cfg.DomTree, defBlock map[ir.Reg]*ir.Block, defInstr map[ir.Reg]*ir.Instr, r ir.Reg, b *ir.Block) (ir.Reg, bool) {
	db := defBlock[r]
	if db == nil || dom.Dominates(db, b) {
		return r, true
	}
	if di := defInstr[r]; di != nil && di.IsConst() {
		nr := f.NewReg()
		cp := f.CloneInstr(di, f)
		cp.Dst = nr
		b.Append(cp)
		defBlock[nr] = b
		defInstr[nr] = cp
		return nr, true
	}
	return ir.NoReg, false
}
