package strength_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/strength"
)

func run(t *testing.T, f *ir.Func, args ...int64) (interp.Value, int64) {
	t.Helper()
	vals := make([]interp.Value, len(args))
	for i, a := range args {
		vals[i] = interp.IntVal(a)
	}
	m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{f.Clone()}})
	v, err := m.Call(f.Name, vals...)
	if err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	return v, m.Steps
}

// loopMulCount counts multiplications inside natural loops.
func loopMulCount(f *ir.Func) int {
	dom := cfg.BuildDomTree(f)
	li := cfg.FindLoops(f, dom)
	n := 0
	for _, b := range f.Blocks {
		if li.Depth(b) == 0 {
			continue
		}
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if in.Op == ir.OpMul {
				n++
			}
		}
	}
	return n
}

// TestReducesIVMultiply: s += i*3 becomes an additive recurrence.
func TestReducesIVMultiply(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 0 => r2
    loadI 0 => r3
    loadI 3 => r4
    jump -> b1
b1:
    mul r2, r4 => r5
    add r3, r5 => r3
    loadI 1 => r6
    add r2, r6 => r2
    cmpLT r2, r1 => r7
    cbr r7 -> b1, b2
b2:
    ret r3
}
`
	f := ir.MustParseFunc(src)
	ref, _ := run(t, f, 10)
	st := strength.Run(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	got, _ := run(t, f, 10)
	if got.I != ref.I {
		t.Fatalf("semantics changed: %d vs %d", got.I, ref.I)
	}
	if st.BasicIVs < 1 || st.Reduced != 1 {
		t.Errorf("stats: %+v\n%s", st, f)
	}
	if n := loopMulCount(f); n != 0 {
		t.Errorf("%d multiplications remain in the loop\n%s", n, f)
	}
}

// TestMultipleDerivedIVs: two multiplications by different constants
// both reduce.
func TestMultipleDerivedIVs(t *testing.T) {
	const src = `
func f(r1, r8, r9) {
b0:
    enter(r1, r8, r9)
    loadI 0 => r2
    loadI 0 => r3
    jump -> b1
b1:
    mul r2, r8 => r5
    mul r2, r9 => r10
    add r5, r10 => r11
    add r3, r11 => r3
    loadI 1 => r6
    add r2, r6 => r2
    cmpLT r2, r1 => r7
    cbr r7 -> b1, b2
b2:
    ret r3
}
`
	f := ir.MustParseFunc(src)
	ref, _ := run(t, f, 8, 3, 5)
	st := strength.Run(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	got, _ := run(t, f, 8, 3, 5)
	if got.I != ref.I {
		t.Fatalf("semantics changed: %d vs %d", got.I, ref.I)
	}
	if st.Reduced != 2 {
		t.Errorf("Reduced = %d, want 2\n%s", st.Reduced, f)
	}
	if n := loopMulCount(f); n != 0 {
		t.Errorf("%d multiplications remain\n%s", n, f)
	}
}

// TestLeavesVariantMultiplier: i*x with x modified in the loop must
// not reduce.
func TestLeavesVariantMultiplier(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 0 => r2
    loadI 0 => r3
    loadI 1 => r4
    jump -> b1
b1:
    mul r2, r4 => r5
    add r3, r5 => r3
    add r4, r4 => r4
    loadI 1 => r6
    add r2, r6 => r2
    cmpLT r2, r1 => r7
    cbr r7 -> b1, b2
b2:
    ret r3
}
`
	f := ir.MustParseFunc(src)
	ref, _ := run(t, f, 6)
	st := strength.Run(f)
	got, _ := run(t, f, 6)
	if got.I != ref.I {
		t.Fatalf("semantics changed: %d vs %d", got.I, ref.I)
	}
	if st.Reduced != 0 {
		t.Errorf("reduced a loop-variant multiplier: %+v\n%s", st, f)
	}
}

// TestNegativeAndLargeSteps: step other than 1.
func TestNegativeAndLargeSteps(t *testing.T) {
	const src = `
func f(r1, r9) {
b0:
    enter(r1, r9)
    loadI 0 => r2
    loadI 0 => r3
    loadI 4 => r8
    jump -> b1
b1:
    mul r2, r9 => r5
    add r3, r5 => r3
    add r2, r8 => r2
    cmpLT r2, r1 => r7
    cbr r7 -> b1, b2
b2:
    ret r3
}
`
	f := ir.MustParseFunc(src)
	ref, _ := run(t, f, 20, 7)
	st := strength.Run(f)
	got, _ := run(t, f, 20, 7)
	if got.I != ref.I {
		t.Fatalf("semantics changed: %d vs %d", got.I, ref.I)
	}
	if st.Reduced != 1 {
		t.Errorf("step-4 IV not reduced: %+v\n%s", st, f)
	}
}
