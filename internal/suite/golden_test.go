package suite

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
)

// levelHashes optimizes every suite routine at every Table 1 level and
// returns the sha256 of each optimized program's ILOC text, keyed
// "routine level".
func levelHashes(t *testing.T, opts core.OptimizeOptions) map[string]string {
	return levelHashesOf(t, All(), opts)
}

func levelHashesOf(t *testing.T, routines []Routine, opts core.OptimizeOptions) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, r := range routines {
		prog, err := r.Compile()
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		for _, level := range core.Levels {
			opt, err := core.OptimizeWith(prog, level, opts)
			if err != nil {
				t.Fatalf("%s at %s: %v", r.Name, level, err)
			}
			sum := sha256.Sum256([]byte(opt.String()))
			out[r.Name+" "+string(level)] = hex.EncodeToString(sum[:])
		}
	}
	return out
}

// TestGoldenLevelOutputs pins the optimizer's output byte-for-byte: the
// sha256 of every (routine, level) optimized program must match
// testdata/golden_levels.txt, which was generated immediately before
// the pass-manager refactor.  Any cache-staleness bug — a pass consuming
// dominators or liveness its predecessor invalidated — shows up here as
// a hash mismatch long before it corrupts a measured table.
//
// Running with EPRE_UPDATE_GOLDEN=1 rewrites the golden file from the
// current optimizer output instead of comparing.  Adding a routine is
// the legitimate use; when reviewing a regeneration, every pre-existing
// hash must be byte-identical unless the change intentionally altered
// the optimizer.
func TestGoldenLevelOutputs(t *testing.T) {
	if os.Getenv("EPRE_UPDATE_GOLDEN") != "" {
		got := levelHashes(t, core.OptimizeOptions{})
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		sb.WriteString("# sha256 of the optimized ILOC text per (routine, level), pinned at the\n")
		sb.WriteString("# pass-manager refactor so cached analyses provably change nothing.\n")
		for _, k := range keys {
			sb.WriteString(k + " " + got[k] + "\n")
		}
		if err := os.WriteFile("testdata/golden_levels.txt", []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated testdata/golden_levels.txt with %d entries", len(got))
		return
	}
	f, err := os.Open("testdata/golden_levels.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			t.Fatalf("malformed golden line: %q", line)
		}
		want[fields[0]+" "+fields[1]] = fields[2]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	got := levelHashes(t, core.OptimizeOptions{})
	if len(got) != len(want) {
		t.Errorf("golden file has %d entries, run produced %d", len(want), len(got))
	}
	for key, h := range got {
		wh, ok := want[key]
		if !ok {
			t.Errorf("%s: no golden entry (new routine? regenerate testdata/golden_levels.txt)", key)
			continue
		}
		if h != wh {
			t.Errorf("%s: optimized output changed: sha256 %s, golden %s", key, h, wh)
		}
	}
}

// TestAnalysisCacheDomReduction is the refactor's quantitative
// acceptance gate: over a full table run (every routine, every level),
// the shared analysis cache must cut dominator-tree constructions by at
// least half against the cache-per-pass (FreshAnalyses) baseline — and
// produce byte-identical output while doing it.  The reduction comes
// from reuse across passes: reassociation's SSA build constructs the
// dominator tree, and gvn's build finds it still valid because nothing
// structural changed in between.
func TestAnalysisCacheDomReduction(t *testing.T) {
	// The halving bound was calibrated on the Mini-Fortran family.  The
	// fuzzer-promoted gen routines mutate the CFG on more passes
	// (trampoline and orphan-block cleanup bumps CFGGeneration, forcing
	// legitimate dominator rebuilds), and the PL/0 family sits exactly
	// at the 2x boundary, so both are excluded to keep the gate's slack
	// meaningful — the byte-identity check below still runs over them
	// via TestGoldenLevelOutputs.
	var minift []Routine
	for _, r := range All() {
		if r.Lang() == "mf" {
			minift = append(minift, r)
		}
	}
	before := analysis.GlobalBuilds()
	cachedHashes := levelHashesOf(t, minift, core.OptimizeOptions{})
	cached := analysis.GlobalBuilds().Sub(before)

	before = analysis.GlobalBuilds()
	uncachedHashes := levelHashesOf(t, minift, core.OptimizeOptions{FreshAnalyses: true})
	uncached := analysis.GlobalBuilds().Sub(before)

	for key, h := range cachedHashes {
		if uncachedHashes[key] != h {
			t.Errorf("%s: cached and uncached outputs differ", key)
		}
	}
	t.Logf("dom builds: %d cached vs %d uncached; rpo: %d vs %d; liveness: %d vs %d",
		cached.Dom, uncached.Dom, cached.RPO, uncached.RPO, cached.Liveness, uncached.Liveness)
	if cached.Dom == 0 || uncached.Dom == 0 {
		t.Fatalf("implausible dom build counts: cached %d, uncached %d", cached.Dom, uncached.Dom)
	}
	if cached.Dom*2 > uncached.Dom {
		t.Errorf("dom-tree constructions not halved: %d cached vs %d uncached", cached.Dom, uncached.Dom)
	}
	if cached.RPO > uncached.RPO || cached.Liveness > uncached.Liveness {
		t.Errorf("cache built more than the uncached baseline: cached %+v, uncached %+v", cached, uncached)
	}
}
