package suite

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/gvn"
	"repro/internal/ir"
	"repro/internal/ssa"
)

// GVNCompareRow reports, for one suite routine, how the precise
// iterative value-numbering backend compares against the paper's AWZ
// partitioning on identical SSA input, plus the end-to-end effect on
// the dynamic operation count at the distribution level.
//
// The partitions are compared at two points:
//
//   - Minimal SSA (no pruning, no copy folding): the analysis-strength
//     comparison.  Here the precise backend's φ-folding and copy
//     transparency prove congruences AWZ structurally cannot — AWZ
//     keys a φ or copy by its operator, so φ(x,x) is never congruent
//     to x.  The Briggs pipeline compensates by having the SSA
//     *constructor* prune trivial φs and fold copies before AWZ runs;
//     the precise backend proves the same facts analytically.
//
//   - The pipeline's actual GVN input (post-reassociation, pruned SSA
//     with copies folded): the end-to-end comparison.  MergedPruned
//     counts congruences the precise backend still adds after the
//     constructor's normalization has done its work.
type GVNCompareRow struct {
	Name    string
	Values  int // minimal-SSA values partitioned (summed over functions)
	AWZ     int // congruence classes found by the AWZ backend
	Precise int // value-expression classes found by the precise backend
	// Merged is AWZ − Precise on minimal SSA: congruences the precise
	// backend proves that AWZ cannot (φ folding, copy transparency,
	// op-through-φ composition).  Zero means the partitions coincide.
	Merged int
	// MergedPruned is the same delta on the pipeline's pruned,
	// copy-folded, reassociated input.
	MergedPruned int
	// Monotone reports the backend-ordering invariant at both
	// comparison points: every pair of values AWZ proves congruent is
	// also congruent under the precise backend (each AWZ class lands
	// inside a single precise class).
	Monotone bool
	// DynAWZ and DynPrecise are the dynamic operation counts of the
	// routine optimized at the distribution level with each backend;
	// both runs are checked against the routine's expected result.
	DynAWZ     int64
	DynPrecise int64
}

// partitionDelta is one function's AWZ-vs-precise comparison on a
// single SSA form.
type partitionDelta struct {
	values, awz, precise int
	monotone             bool
}

// comparePartitions builds the requested SSA form of f in place and
// partitions it with both backends.  The caller must pass a function
// not yet in SSA form (the builder's contract).
func comparePartitions(f *ir.Func, build ssa.BuildOptions) partitionDelta {
	ac := analysis.NewCache(f)
	ssa.BuildWith(f, build, ac)
	values, awz := gvn.AWZClasses(f)
	_, precise := gvn.PreciseClasses(f)
	return partitionDelta{
		values:   len(values),
		awz:      classCount(values, awz),
		precise:  classCount(values, precise),
		monotone: monotone(values, awz, precise),
	}
}

// classCount returns the number of distinct class ids among values.
func classCount(values []ir.Reg, class []uint32) int {
	seen := make(map[uint32]struct{}, len(values))
	for _, v := range values {
		seen[class[v]] = struct{}{}
	}
	return len(seen)
}

// monotone reports whether every AWZ congruence class maps into a
// single precise class — the "precise proves at least everything AWZ
// proves" ordering.  values must be the register list both partitions
// were computed over.
func monotone(values []ir.Reg, awz, precise []uint32) bool {
	to := make(map[uint32]uint32, len(values))
	for _, v := range values {
		p, ok := to[awz[v]]
		if !ok {
			to[awz[v]] = precise[v]
		} else if p != precise[v] {
			return false
		}
	}
	return true
}

// gvnCompareRow measures one routine.  Each comparison compiles the
// routine afresh so both backends always see the identical input form.
func gvnCompareRow(ctx context.Context, r Routine) (GVNCompareRow, error) {
	row := GVNCompareRow{Name: r.Name, Monotone: true}

	// Analysis-strength comparison on minimal SSA.
	prog, err := r.Compile()
	if err != nil {
		return row, fmt.Errorf("%s: %w", r.Name, err)
	}
	for _, f := range prog.Funcs {
		if err := ctx.Err(); err != nil {
			return row, err
		}
		d := comparePartitions(f, ssa.BuildOptions{})
		row.Values += d.values
		row.AWZ += d.awz
		row.Precise += d.precise
		if !d.monotone {
			row.Monotone = false
		}
	}
	row.Merged = row.AWZ - row.Precise

	// End-to-end comparison at the pipeline's GVN position: after
	// global reassociation, on pruned SSA with copies folded.
	prog, err = r.Compile()
	if err != nil {
		return row, fmt.Errorf("%s: %w", r.Name, err)
	}
	reassocPass, err := core.PassByName("reassoc")
	if err != nil {
		return row, err
	}
	prunedAWZ, prunedPrecise := 0, 0
	for _, f := range prog.Funcs {
		if err := ctx.Err(); err != nil {
			return row, err
		}
		reassocPass.Run(&core.PassContext{Ctx: ctx, Func: f, Analyses: analysis.NewCache(f)})
		d := comparePartitions(f, ssa.BuildOptions{Prune: true, FoldCopies: true})
		prunedAWZ += d.awz
		prunedPrecise += d.precise
		if !d.monotone {
			row.Monotone = false
		}
	}
	row.MergedPruned = prunedAWZ - prunedPrecise

	for _, backend := range core.GVNBackends {
		n, err := RunRoutineOpts(ctx, r, core.LevelDist, core.OptimizeOptions{GVN: backend})
		if err != nil {
			return row, fmt.Errorf("%s gvn=%s: %w", r.Name, backend, err)
		}
		if backend == core.GVNPrecise {
			row.DynPrecise = n
		} else {
			row.DynAWZ = n
		}
	}
	return row, nil
}

// GVNCompare measures every suite routine, fanning out across up to
// workers goroutines (workers <= 1 is serial).  Rows sort by Merged
// descending — routines where the precise backend proves the most
// extra congruences first — with ties broken by name, so the table is
// canonical for any worker count.
func GVNCompare(ctx context.Context, workers int) ([]GVNCompareRow, error) {
	routines := All()
	rows := make([]GVNCompareRow, len(routines))
	errs := make([]error, len(routines))

	if workers <= 1 {
		for i, r := range routines {
			rows[i], errs[i] = gvnCompareRow(ctx, r)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, r := range routines {
			wg.Add(1)
			go func(i int, r Routine) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				rows[i], errs[i] = gvnCompareRow(ctx, r)
			}(i, r)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Merged != rows[j].Merged {
			return rows[i].Merged > rows[j].Merged
		}
		return rows[i].Name < rows[j].Name
	})
	return rows, nil
}

// WriteGVNCompare renders the comparison as an aligned text table.
func WriteGVNCompare(w io.Writer, rows []GVNCompareRow) {
	fmt.Fprintf(w, "%-12s %7s %7s %8s %7s %7s %9s %10s %12s\n",
		"routine", "values", "awz", "precise", "merged", "pruned", "monotone", "dyn(awz)", "dyn(precise)")
	for _, r := range rows {
		mono := "yes"
		if !r.Monotone {
			mono = "NO"
		}
		fmt.Fprintf(w, "%-12s %7d %7d %8d %7d %7d %9s %10d %12d\n",
			r.Name, r.Values, r.AWZ, r.Precise, r.Merged, r.MergedPruned, mono, r.DynAWZ, r.DynPrecise)
	}
}
