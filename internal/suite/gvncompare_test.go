package suite

import (
	"context"
	"strings"
	"testing"
)

// TestGVNPreciseRefinesAWZSuiteWide is the backend-ordering gate over
// the whole suite: on every routine, at both comparison points
// (minimal SSA and the pipeline's pruned post-reassociation input),
// every congruence AWZ proves must also hold under the precise
// backend, and the precise partition can never have more classes.
// The reverse — precise proving strictly more — must happen on at
// least three routines, or the second backend isn't earning its keep.
func TestGVNPreciseRefinesAWZSuiteWide(t *testing.T) {
	rows, err := GVNCompare(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(All()) {
		t.Fatalf("GVNCompare returned %d rows, suite has %d routines", len(rows), len(All()))
	}
	strictly := 0
	for _, r := range rows {
		if !r.Monotone {
			t.Errorf("%s: AWZ-congruent values split by the precise backend", r.Name)
		}
		if r.Merged < 0 {
			t.Errorf("%s: precise found %d MORE classes than AWZ on minimal SSA", r.Name, -r.Merged)
		}
		if r.MergedPruned < 0 {
			t.Errorf("%s: precise found %d MORE classes than AWZ on pruned SSA", r.Name, -r.MergedPruned)
		}
		if r.Merged > 0 {
			strictly++
		}
		if r.DynAWZ <= 0 || r.DynPrecise <= 0 {
			t.Errorf("%s: non-positive dynamic op count (awz=%d precise=%d)", r.Name, r.DynAWZ, r.DynPrecise)
		}
	}
	if strictly < 3 {
		t.Errorf("precise backend strictly stronger on only %d routines, want >= 3", strictly)
	}
}

// TestGVNCompareCanonicalOrder pins the report's row order (Merged
// descending, then name) so the rendered table is byte-identical for
// any worker count.
func TestGVNCompareCanonicalOrder(t *testing.T) {
	rows, err := GVNCompare(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if a.Merged < b.Merged || (a.Merged == b.Merged && a.Name >= b.Name) {
			t.Errorf("rows out of canonical order: %q (merged %d) before %q (merged %d)",
				a.Name, a.Merged, b.Name, b.Merged)
		}
	}
	var sb strings.Builder
	WriteGVNCompare(&sb, rows[:1])
	out := sb.String()
	for _, want := range []string{"routine", "merged", "monotone", rows[0].Name} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
