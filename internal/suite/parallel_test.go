package suite_test

import (
	"bytes"
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/suite"
)

// TestTable1ParallelDeterminism: the parallel Table 1 run must render
// byte-identically to the serial run — same rows, same order, same
// formatting — for any worker count.
func TestTable1ParallelDeterminism(t *testing.T) {
	serialRows, err := suite.Table1Ctx(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var serial bytes.Buffer
	suite.WriteTable1(&serial, serialRows)

	for _, workers := range []int{2, 8} {
		parRows, err := suite.Table1Ctx(context.Background(), workers)
		if err != nil {
			t.Fatal(err)
		}
		var par bytes.Buffer
		suite.WriteTable1(&par, parRows)
		if !bytes.Equal(serial.Bytes(), par.Bytes()) {
			t.Errorf("workers=%d: parallel Table 1 differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				workers, serial.String(), par.String())
		}
	}
}

// TestTable1Cancelled: an already-expired context fails fast with an
// error wrapping the context error rather than measuring the suite.
func TestTable1Cancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := suite.Table1Ctx(ctx, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("cancelled run still took %v", el)
	}
}

// TestAllSorted: the suite iterates in explicitly canonical (name)
// order, independent of registration order.
func TestAllSorted(t *testing.T) {
	rs := suite.All()
	if !sort.SliceIsSorted(rs, func(i, j int) bool { return rs[i].Name < rs[j].Name }) {
		names := make([]string, len(rs))
		for i, r := range rs {
			names[i] = r.Name
		}
		t.Errorf("suite.All not sorted by name: %v", names)
	}
}
