package suite

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/lcm"
	"repro/internal/lospre"
	"repro/internal/pre"
)

// PreCompareStat is one backend's effect on one routine: the static
// transformation counts at the pipeline's PRE position and the
// end-to-end dynamic operation count at the partial level.
type PreCompareStat struct {
	// Inserted counts computations the backend inserted (on edges for
	// drechsler, at block boundaries for lcm/lospre), summed over
	// functions and fixpoint rounds.
	Inserted int
	// Eliminated counts original computations the backend removed or
	// rewrote into copies: Deleted+Rewritten for drechsler (Mode A
	// removals plus Mode B copy rewrites), Replaced for lcm and lospre.
	Eliminated int
	// Dyn is the routine's dynamic operation count optimized at the
	// partial level with this backend, validated against the reference
	// result.
	Dyn int64
}

// PreCompareRow compares the three PRE backends on one suite routine.
//
// The static columns measure each backend on the identical input — the
// routine normalized exactly as the partial pipeline would normalize it
// before its PRE slot — so insertion/elimination counts are directly
// comparable.  The dynamic columns then measure the full partial
// pipeline per backend, where the downstream cleanup passes (sccp,
// peephole, dce, coalesce) have consumed the compensation copies each
// backend leaves behind.
type PreCompareRow struct {
	Name      string
	Drechsler PreCompareStat
	LCM       PreCompareStat
	Lospre    PreCompareStat
}

// stat returns the row's entry for a backend.
func (r *PreCompareRow) stat(b core.PREBackend) *PreCompareStat {
	switch b {
	case core.PRELCM:
		return &r.LCM
	case core.PRELospre:
		return &r.Lospre
	}
	return &r.Drechsler
}

// preCompareRow measures one routine.  Each backend recompiles the
// routine so all three see the identical input form.
func preCompareRow(ctx context.Context, r Routine) (PreCompareRow, error) {
	row := PreCompareRow{Name: r.Name}
	normalize, err := core.PassByName("normalize")
	if err != nil {
		return row, err
	}
	for _, backend := range core.PREBackends {
		st := row.stat(backend)

		// Static effect at the PRE position: normalize first, exactly
		// as the partial pipeline does before its PRE slot.
		prog, err := r.Compile()
		if err != nil {
			return row, fmt.Errorf("%s: %w", r.Name, err)
		}
		for _, f := range prog.Funcs {
			if err := ctx.Err(); err != nil {
				return row, err
			}
			ac := analysis.NewCache(f)
			normalize.Run(&core.PassContext{Ctx: ctx, Func: f, Analyses: ac})
			switch backend {
			case core.PRELCM:
				s := lcm.RunToFixpointWith(f, ac)
				st.Inserted += s.Inserted
				st.Eliminated += s.Replaced
			case core.PRELospre:
				s := lospre.RunToFixpointWith(f, ac)
				st.Inserted += s.Inserted
				st.Eliminated += s.Replaced
			default:
				s := pre.RunToFixpointWith(f, ac)
				st.Inserted += s.Inserted
				st.Eliminated += s.Deleted + s.Rewritten
			}
		}

		// End-to-end effect: the whole partial pipeline with this
		// backend in the PRE slot, checked against the reference.
		n, err := RunRoutineOpts(ctx, r, core.LevelPartial, core.OptimizeOptions{PRE: backend})
		if err != nil {
			return row, fmt.Errorf("%s pre=%s: %w", r.Name, backend, err)
		}
		st.Dyn = n
	}
	return row, nil
}

// PreCompare measures every suite routine with all three PRE backends,
// fanning out across up to workers goroutines (workers <= 1 is
// serial).  Rows sort by name, so the table is canonical for any
// worker count.
func PreCompare(ctx context.Context, workers int) ([]PreCompareRow, error) {
	routines := All()
	rows := make([]PreCompareRow, len(routines))
	errs := make([]error, len(routines))

	if workers <= 1 {
		for i, r := range routines {
			rows[i], errs[i] = preCompareRow(ctx, r)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, r := range routines {
			wg.Add(1)
			go func(i int, r Routine) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				rows[i], errs[i] = preCompareRow(ctx, r)
			}(i, r)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows, nil
}

// WritePreCompare renders the comparison as an aligned text table: one
// ins/elim/dyn column group per backend.
func WritePreCompare(w io.Writer, rows []PreCompareRow) {
	fmt.Fprintf(w, "%-12s %23s  %23s  %23s\n", "",
		"drechsler", "lcm", "lospre")
	fmt.Fprintf(w, "%-12s %5s %5s %11s  %5s %5s %11s  %5s %5s %11s\n",
		"routine", "ins", "elim", "dyn", "ins", "elim", "dyn", "ins", "elim", "dyn")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %5d %5d %11d  %5d %5d %11d  %5d %5d %11d\n",
			r.Name,
			r.Drechsler.Inserted, r.Drechsler.Eliminated, r.Drechsler.Dyn,
			r.LCM.Inserted, r.LCM.Eliminated, r.LCM.Dyn,
			r.Lospre.Inserted, r.Lospre.Eliminated, r.Lospre.Dyn)
	}
}
