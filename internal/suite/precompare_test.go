package suite

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestPreCompareAllRoutines is the acceptance check for the alternate
// PRE backends: every suite routine, optimized at the partial level
// with each of the three backends, must still compute its reference
// result (RunRoutineOpts validates it).  The static columns must be
// populated wherever the paper's backend found redundancy, and the
// worker fan-out must not change the table.
func TestPreCompareAllRoutines(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all routines × 3 backends")
	}
	ctx := context.Background()
	rows, err := PreCompare(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(All()) {
		t.Fatalf("got %d rows, want %d", len(rows), len(All()))
	}
	var drEl, lcmEl, loEl int
	for _, r := range rows {
		for _, st := range []PreCompareStat{r.Drechsler, r.LCM, r.Lospre} {
			if st.Dyn <= 0 {
				t.Errorf("%s: non-positive dynamic count %+v", r.Name, st)
			}
		}
		drEl += r.Drechsler.Eliminated
		lcmEl += r.LCM.Eliminated
		loEl += r.Lospre.Eliminated
	}
	// The suite is known to carry partial redundancies; a backend that
	// eliminates nothing anywhere is wired up wrong.
	if drEl == 0 || lcmEl == 0 || loEl == 0 {
		t.Errorf("a backend eliminated nothing across the whole suite: drechsler=%d lcm=%d lospre=%d",
			drEl, lcmEl, loEl)
	}

	var b strings.Builder
	WritePreCompare(&b, rows)
	out := b.String()
	for _, want := range []string{"drechsler", "lcm", "lospre", "routine", rows[0].Name} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

// TestPreCompareSerialParallelAgree: the canonical-output guarantee on
// a small slice of the suite (full agreement is implied by the row
// slice being index-addressed, but pin it anyway).
func TestPreCompareSerialParallelAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs routines twice")
	}
	ctx := context.Background()
	serial, err := PreCompare(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := PreCompare(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	WritePreCompare(&a, serial)
	WritePreCompare(&b, parallel)
	if a.String() != b.String() {
		t.Error("serial and parallel precompare tables differ")
	}
}

// TestPreBackendsPreserveRoutineSemantics spot-checks that the partial
// level with a non-default backend still passes each routine's own
// result check at another level too (reassoc keeps its PRE slot).
func TestPreBackendsPreserveRoutineSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("optimizes routines at two levels")
	}
	ctx := context.Background()
	for _, r := range All()[:6] {
		for _, backend := range []core.PREBackend{core.PRELCM, core.PRELospre} {
			if _, err := RunRoutineOpts(ctx, r, core.LevelReassoc, core.OptimizeOptions{PRE: backend}); err != nil {
				t.Errorf("%s at reassoc with pre=%s: %v", r.Name, backend, err)
			}
		}
	}
}
