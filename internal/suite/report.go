package suite

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/reassoc"
)

// Table1Row holds the dynamic operation counts of one routine at the
// paper's four optimization levels, plus the derived percentage
// columns (partial vs. baseline, reassociation vs. partial,
// distribution vs. reassociation, "new" = reassoc+dist+GVN over
// partial, "total" = everything over baseline).
type Table1Row struct {
	Name     string
	Baseline int64
	Partial  int64
	Reassoc  int64
	Dist     int64
}

// Pct returns the percentage improvement of b over a (positive =
// faster), in the paper's style.
func Pct(a, b int64) float64 {
	if a == 0 {
		return 0
	}
	return 100 * float64(a-b) / float64(a)
}

// PartialPct is the improvement of PRE over the baseline.
func (r Table1Row) PartialPct() float64 { return Pct(r.Baseline, r.Partial) }

// ReassocPct is the improvement of reassociation+GVN over PRE alone.
func (r Table1Row) ReassocPct() float64 { return Pct(r.Partial, r.Reassoc) }

// DistPct is the improvement of distribution over plain reassociation.
func (r Table1Row) DistPct() float64 { return Pct(r.Reassoc, r.Dist) }

// NewPct is the paper's "new" column: the combined contribution of
// reassociation, distribution and value numbering over partial.
func (r Table1Row) NewPct() float64 { return Pct(r.Partial, r.Dist) }

// TotalPct is the paper's "total" column: the whole set of
// optimizations over the baseline.
func (r Table1Row) TotalPct() float64 { return Pct(r.Baseline, r.Dist) }

// Table2Row holds the static instruction counts around forward
// propagation for one routine (the paper's Table 2).
type Table2Row struct {
	Name   string
	Before int
	After  int
}

// Expansion is the code growth factor.
func (r Table2Row) Expansion() float64 {
	if r.Before == 0 {
		return 1
	}
	return float64(r.After) / float64(r.Before)
}

// RunRoutine compiles, optimizes and interprets one routine at one
// level, validating the result against the reference.
func RunRoutine(r Routine, level core.Level) (int64, error) {
	return RunRoutineCtx(context.Background(), r, level)
}

// RunRoutineCtx is RunRoutine under a context: both the optimization
// and the interpretation poll it, so a deadline bounds the whole
// measurement.
func RunRoutineCtx(ctx context.Context, r Routine, level core.Level) (int64, error) {
	return RunRoutineOpts(ctx, r, level, core.OptimizeOptions{})
}

// RunRoutineOpts is RunRoutineCtx with full optimizer options — the
// hook for per-pass instrumentation (OnPass) and cache ablation
// (FreshAnalyses) in the table harness and the bench tool.  The given
// ctx overrides opts.Ctx.
func RunRoutineOpts(ctx context.Context, r Routine, level core.Level, opts core.OptimizeOptions) (int64, error) {
	prog, err := r.Compile()
	if err != nil {
		return 0, fmt.Errorf("%s: %w", r.Name, err)
	}
	opts.Ctx = ctx
	opt, err := core.OptimizeWith(prog, level, opts)
	if err != nil {
		return 0, fmt.Errorf("%s at %s: %w", r.Name, level, err)
	}
	m := interp.NewMachine(opt)
	m.SetContext(ctx)
	v, err := m.Call(r.Driver, r.Args...)
	if err != nil {
		return 0, fmt.Errorf("%s at %s: %w", r.Name, level, err)
	}
	if err := r.Check(v); err != nil {
		return 0, fmt.Errorf("at %s: %w", level, err)
	}
	return m.Steps, nil
}

// table1Row measures one routine at all four levels.
func table1Row(ctx context.Context, r Routine, opts core.OptimizeOptions) (Table1Row, error) {
	row := Table1Row{Name: r.Name}
	for _, level := range core.Levels {
		n, err := RunRoutineOpts(ctx, r, level, opts)
		if err != nil {
			return row, err
		}
		switch level {
		case core.LevelBaseline:
			row.Baseline = n
		case core.LevelPartial:
			row.Partial = n
		case core.LevelReassoc:
			row.Reassoc = n
		case core.LevelDist:
			row.Dist = n
		}
	}
	return row, nil
}

// Table1 measures every routine at all four levels, serially.
func Table1() ([]Table1Row, error) {
	return Table1Ctx(context.Background(), 1)
}

// Table1Ctx measures every routine at all four levels, fanning the
// routines out across up to workers goroutines (workers <= 1 is
// serial).  Each routine is an independent measurement — compile,
// optimize, interpret — so the rows, and therefore the rendered table,
// are byte-identical regardless of the worker count: results land in a
// slice indexed by routine and the final sort is the same canonical
// order either way.
func Table1Ctx(ctx context.Context, workers int) ([]Table1Row, error) {
	return Table1Opts(ctx, workers, core.OptimizeOptions{})
}

// Table1Opts is Table1Ctx with full optimizer options: an OnPass hook
// observes every pass application of the whole table run (it must be
// concurrency-safe when workers > 1), and FreshAnalyses ablates the
// shared analysis cache for baseline measurements.
func Table1Opts(ctx context.Context, workers int, opts core.OptimizeOptions) ([]Table1Row, error) {
	routines := All()
	rows := make([]Table1Row, len(routines))
	errs := make([]error, len(routines))

	if workers <= 1 {
		for i, r := range routines {
			rows[i], errs[i] = table1Row(ctx, r, opts)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, r := range routines {
			wg.Add(1)
			go func(i int, r Routine) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				rows[i], errs[i] = table1Row(ctx, r, opts)
			}(i, r)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// The paper presents Table 1 sorted by the "new" column, largest
	// combined contribution first; ties break by name so the order is
	// fully canonical.
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i].NewPct(), rows[j].NewPct()
		if a != b {
			return a > b
		}
		return rows[i].Name < rows[j].Name
	})
	return rows, nil
}

// Table2 measures forward-propagation code expansion per routine.
func Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, r := range All() {
		prog, err := r.Compile()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.Name, err)
		}
		row := Table2Row{Name: r.Name}
		for _, f := range prog.Funcs {
			st := reassoc.Run(f, reassoc.DefaultOptions())
			row.Before += st.BeforeProp
			row.After += st.AfterProp
		}
		if err := ir.VerifyProgram(prog); err != nil {
			return nil, fmt.Errorf("%s: %w", r.Name, err)
		}
		rows = append(rows, row)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows, nil
}

// WriteTable1 renders rows in the layout of the paper's Table 1.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-10s %12s %12s %6s %13s %6s %12s %6s %6s %6s\n",
		"routine", "baseline", "partial", "", "reassociation", "", "distribution", "", "new", "total")
	fmt.Fprintln(w, strings.Repeat("-", 102))
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12d %12d %5.0f%% %13d %5.0f%% %12d %5.0f%% %5.0f%% %5.0f%%\n",
			r.Name, r.Baseline, r.Partial, r.PartialPct(),
			r.Reassoc, r.ReassocPct(), r.Dist, r.DistPct(),
			r.NewPct(), r.TotalPct())
	}
}

// WriteTable2 renders rows in the layout of the paper's Table 2,
// including the totals line.
func WriteTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-10s %8s %8s %10s\n", "routine", "before", "after", "expansion")
	fmt.Fprintln(w, strings.Repeat("-", 40))
	var tb, ta int
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %8d %10.3f\n", r.Name, r.Before, r.After, r.Expansion())
		tb += r.Before
		ta += r.After
	}
	fmt.Fprintln(w, strings.Repeat("-", 40))
	fmt.Fprintf(w, "%-10s %8d %8d %10.3f\n", "totals", tb, ta, float64(ta)/float64(tb))
}
