package suite

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minift"
	"repro/internal/reassoc"
)

// Table1Row holds the dynamic operation counts of one routine at the
// paper's four optimization levels, plus the derived percentage
// columns (partial vs. baseline, reassociation vs. partial,
// distribution vs. reassociation, "new" = reassoc+dist+GVN over
// partial, "total" = everything over baseline).
type Table1Row struct {
	Name     string
	Baseline int64
	Partial  int64
	Reassoc  int64
	Dist     int64
}

// Pct returns the percentage improvement of b over a (positive =
// faster), in the paper's style.
func Pct(a, b int64) float64 {
	if a == 0 {
		return 0
	}
	return 100 * float64(a-b) / float64(a)
}

// PartialPct is the improvement of PRE over the baseline.
func (r Table1Row) PartialPct() float64 { return Pct(r.Baseline, r.Partial) }

// ReassocPct is the improvement of reassociation+GVN over PRE alone.
func (r Table1Row) ReassocPct() float64 { return Pct(r.Partial, r.Reassoc) }

// DistPct is the improvement of distribution over plain reassociation.
func (r Table1Row) DistPct() float64 { return Pct(r.Reassoc, r.Dist) }

// NewPct is the paper's "new" column: the combined contribution of
// reassociation, distribution and value numbering over partial.
func (r Table1Row) NewPct() float64 { return Pct(r.Partial, r.Dist) }

// TotalPct is the paper's "total" column: the whole set of
// optimizations over the baseline.
func (r Table1Row) TotalPct() float64 { return Pct(r.Baseline, r.Dist) }

// Table2Row holds the static instruction counts around forward
// propagation for one routine (the paper's Table 2).
type Table2Row struct {
	Name   string
	Before int
	After  int
}

// Expansion is the code growth factor.
func (r Table2Row) Expansion() float64 {
	if r.Before == 0 {
		return 1
	}
	return float64(r.After) / float64(r.Before)
}

// RunRoutine compiles, optimizes and interprets one routine at one
// level, validating the result against the reference.
func RunRoutine(r Routine, level core.Level) (int64, error) {
	prog, err := minift.Compile(r.Source)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", r.Name, err)
	}
	opt, err := core.Optimize(prog, level)
	if err != nil {
		return 0, fmt.Errorf("%s at %s: %w", r.Name, level, err)
	}
	m := interp.NewMachine(opt)
	v, err := m.Call(r.Driver, r.Args...)
	if err != nil {
		return 0, fmt.Errorf("%s at %s: %w", r.Name, level, err)
	}
	if err := r.Check(v); err != nil {
		return 0, fmt.Errorf("at %s: %w", level, err)
	}
	return m.Steps, nil
}

// Table1 measures every routine at all four levels.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, r := range All() {
		row := Table1Row{Name: r.Name}
		for _, level := range core.Levels {
			n, err := RunRoutine(r, level)
			if err != nil {
				return nil, err
			}
			switch level {
			case core.LevelBaseline:
				row.Baseline = n
			case core.LevelPartial:
				row.Partial = n
			case core.LevelReassoc:
				row.Reassoc = n
			case core.LevelDist:
				row.Dist = n
			}
		}
		rows = append(rows, row)
	}
	// The paper presents Table 1 sorted by the "new" column, largest
	// combined contribution first.
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i].NewPct() > rows[j].NewPct()
	})
	return rows, nil
}

// Table2 measures forward-propagation code expansion per routine.
func Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, r := range All() {
		prog, err := minift.Compile(r.Source)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.Name, err)
		}
		row := Table2Row{Name: r.Name}
		for _, f := range prog.Funcs {
			st := reassoc.Run(f, reassoc.DefaultOptions())
			row.Before += st.BeforeProp
			row.After += st.AfterProp
		}
		if err := ir.VerifyProgram(prog); err != nil {
			return nil, fmt.Errorf("%s: %w", r.Name, err)
		}
		rows = append(rows, row)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows, nil
}

// WriteTable1 renders rows in the layout of the paper's Table 1.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-10s %12s %12s %6s %13s %6s %12s %6s %6s %6s\n",
		"routine", "baseline", "partial", "", "reassociation", "", "distribution", "", "new", "total")
	fmt.Fprintln(w, strings.Repeat("-", 102))
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12d %12d %5.0f%% %13d %5.0f%% %12d %5.0f%% %5.0f%% %5.0f%%\n",
			r.Name, r.Baseline, r.Partial, r.PartialPct(),
			r.Reassoc, r.ReassocPct(), r.Dist, r.DistPct(),
			r.NewPct(), r.TotalPct())
	}
}

// WriteTable2 renders rows in the layout of the paper's Table 2,
// including the totals line.
func WriteTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-10s %8s %8s %10s\n", "routine", "before", "after", "expansion")
	fmt.Fprintln(w, strings.Repeat("-", 40))
	var tb, ta int
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %8d %10.3f\n", r.Name, r.Before, r.After, r.Expansion())
		tb += r.Before
		ta += r.After
	}
	fmt.Fprintln(w, strings.Repeat("-", 40))
	fmt.Fprintf(w, "%-10s %8d %8d %10.3f\n", "totals", tb, ta, float64(ta)/float64(tb))
}
