package suite

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
)

// TestSuiteRoundTrip is the suite-wide property test for the arena
// representation: for every routine — both the raw compile and each
// Table 1 optimization level — the printed ILOC must parse back into
// an arena-backed program whose printed form is byte-identical.  The
// textual form is the compatibility boundary of the arena refactor
// (DESIGN.md §16); this pins print∘parse as the identity on it, which
// is what makes golden_levels.txt comparable across representations.
func TestSuiteRoundTrip(t *testing.T) {
	routines := All()
	if len(routines) != 47 {
		t.Fatalf("suite has %d routines, want 47", len(routines))
	}
	check := func(t *testing.T, label, text string) {
		t.Helper()
		reparsed, err := ir.ParseProgramString(text)
		if err != nil {
			t.Fatalf("%s: printed form does not re-parse: %v", label, err)
		}
		if again := reparsed.String(); again != text {
			t.Errorf("%s: print∘parse is not the identity on printed ILOC", label)
		}
	}
	for _, r := range routines {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			prog, err := r.Compile()
			if err != nil {
				t.Fatal(err)
			}
			check(t, r.Name+" raw", prog.String())
			for _, level := range core.Levels {
				fresh, err := r.Compile()
				if err != nil {
					t.Fatal(err)
				}
				opt, err := core.Optimize(fresh, level)
				if err != nil {
					t.Fatalf("%s: %v", level, err)
				}
				check(t, r.Name+" "+string(level), opt.String())
			}
		})
	}
}

// TestCorpusRoundTrip replays the committed FuzzParseRoundTrip corpus
// (seeds plus saved interesting inputs) through the arena parser and
// printer.  Corpus entries that the parser rejects are skipped — the
// property only covers accepted programs, same as the fuzz target.
func TestCorpusRoundTrip(t *testing.T) {
	dir := filepath.Join("..", "ir", "testdata", "fuzz", "FuzzParseRoundTrip")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading committed corpus: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("committed corpus is empty")
	}
	ran := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		text, ok := corpusString(string(data))
		if !ok {
			t.Fatalf("%s: unrecognized corpus encoding", e.Name())
		}
		prog, err := ir.ParseProgramString(text)
		if err != nil {
			continue // rejected inputs carry no round-trip obligation
		}
		ran++
		printed := prog.String()
		reparsed, err := ir.ParseProgramString(printed)
		if err != nil {
			t.Fatalf("%s: printed form does not re-parse: %v", e.Name(), err)
		}
		if again := reparsed.String(); again != printed {
			t.Errorf("%s: print∘parse is not the identity", e.Name())
		}
	}
	if ran == 0 {
		t.Fatal("no corpus entry parsed; the corpus has rotted")
	}
}

// corpusString decodes one `go test fuzz v1` corpus file's single
// string argument.
func corpusString(data string) (string, bool) {
	for _, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "string(") || !strings.HasSuffix(line, ")") {
			continue
		}
		s, err := strconv.Unquote(line[len("string(") : len(line)-1])
		if err != nil {
			return "", false
		}
		return s, true
	}
	return "", false
}
