package suite

import "repro/internal/interp"

// Routines from Forsythe, Malcolm & Moler, "Computer Methods for
// Mathematical Computations" — the paper's second source of test
// programs.  Each is re-implemented from the published algorithm.

// ---------------------------------------------------------------------
// fmin — golden-section minimization (FMM's FMIN, fixed iteration
// count instead of a tolerance test) (Table 1 row "fmin").
// ---------------------------------------------------------------------

const fminSrc = `
func f(x: real): real {
    return (x - 0.7) * (x - 0.7) + 2.0
}

func fmin(ax: real, bx: real, iters: int): real {
    var a: real = ax
    var b: real = bx
    var c: real = 0.3819660112501051
    var x1: real = a + c * (b - a)
    var x2: real = b - c * (b - a)
    var f1: real = f(x1)
    var f2: real = f(x2)
    for it = 1 to iters {
        if f1 < f2 {
            b = x2
            x2 = x1
            f2 = f1
            x1 = a + c * (b - a)
            f1 = f(x1)
        } else {
            a = x1
            x1 = x2
            f1 = f2
            x2 = b - c * (b - a)
            f2 = f(x2)
        }
    }
    return (a + b) / 2.0
}

func driver(iters: int): real {
    return fmin(0.0, 1.0, iters)
}
`

func fminRef(iters int) float64 {
	f := func(x float64) float64 { return (x-0.7)*(x-0.7) + 2.0 }
	a, b := 0.0, 1.0
	const c = 0.3819660112501051
	x1 := a + c*(b-a)
	x2 := b - c*(b-a)
	f1, f2 := f(x1), f(x2)
	for it := 0; it < iters; it++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = a + c*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = b - c*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2.0
}

// ---------------------------------------------------------------------
// zeroin — root finding by bisection (FMM's ZEROIN, simplified to pure
// bisection with a fixed iteration count) (Table 1 row "zeroin").
// ---------------------------------------------------------------------

const zeroinSrc = `
func g(x: real): real {
    return x * x * x - 2.0 * x - 5.0
}

func zeroin(ax: real, bx: real, iters: int): real {
    var a: real = ax
    var b: real = bx
    var fa: real = g(a)
    for it = 1 to iters {
        var m: real = (a + b) / 2.0
        var fm: real = g(m)
        if fa * fm <= 0.0 {
            b = m
        } else {
            a = m
            fa = fm
        }
    }
    return (a + b) / 2.0
}

func driver(iters: int): real {
    return zeroin(2.0, 3.0, iters)
}
`

func zeroinRef(iters int) float64 {
	g := func(x float64) float64 { return x*x*x - 2.0*x - 5.0 }
	a, b := 2.0, 3.0
	fa := g(a)
	for it := 0; it < iters; it++ {
		m := (a + b) / 2.0
		fm := g(m)
		if fa*fm <= 0 {
			b = m
		} else {
			a = m
			fa = fm
		}
	}
	return (a + b) / 2.0
}

// ---------------------------------------------------------------------
// urand — linear congruential random numbers (FMM's URAND) (Table 1
// row "urand"); pure integer recurrence, exactly reproducible.
// ---------------------------------------------------------------------

const urandSrc = `
func driver(n: int): int {
    var seed: int = 12345
    var s: int = 0
    for i = 1 to n {
        seed = (seed * 1103515245 + 12345) % 2147483648
        s = s + seed % 1000
    }
    return s
}
`

func urandRef(n int) int64 {
	seed := int64(12345)
	var s int64
	for i := 0; i < n; i++ {
		seed = (seed*1103515245 + 12345) % 2147483648
		s += seed % 1000
	}
	return s
}

// ---------------------------------------------------------------------
// spline — natural cubic spline coefficients (FMM's SPLINE; the
// standard tridiagonal formulation) (Table 1 row "spline").
// ---------------------------------------------------------------------

const splineSrc = `
func spline(n: int, x: [*]real, y: [*]real, b: [*]real, c: [*]real, d: [*]real) {
    var h: [64]real
    var al: [64]real
    var l: [64]real
    var mu: [64]real
    var z: [64]real
    for i = 1 to n - 1 {
        h[i] = x[i+1] - x[i]
    }
    for i = 2 to n - 1 {
        al[i] = 3.0 * (y[i+1] - y[i]) / h[i] - 3.0 * (y[i] - y[i-1]) / h[i-1]
    }
    l[1] = 1.0
    mu[1] = 0.0
    z[1] = 0.0
    for i = 2 to n - 1 {
        l[i] = 2.0 * (x[i+1] - x[i-1]) - h[i-1] * mu[i-1]
        mu[i] = h[i] / l[i]
        z[i] = (al[i] - h[i-1] * z[i-1]) / l[i]
    }
    l[n] = 1.0
    z[n] = 0.0
    c[n] = 0.0
    for jj = 1 to n - 1 {
        var j: int = n - jj
        c[j] = z[j] - mu[j] * c[j+1]
        b[j] = (y[j+1] - y[j]) / h[j] - h[j] * (c[j+1] + 2.0 * c[j]) / 3.0
        d[j] = (c[j+1] - c[j]) / (3.0 * h[j])
    }
}

func driver(n: int): real {
    var x: [64]real
    var y: [64]real
    var b: [64]real
    var c: [64]real
    var d: [64]real
    for i = 1 to n {
        x[i] = real(i) / 2.0
        y[i] = real(i * i) / real(n) - real(i)
    }
    spline(n, x, y, b, c, d)
    var s: real = 0.0
    for i = 1 to n - 1 {
        s = s + b[i] + c[i] + d[i]
    }
    return s
}
`

func splineRef(n int) float64 {
	x := make([]float64, n+2)
	y := make([]float64, n+2)
	b := make([]float64, n+2)
	c := make([]float64, n+2)
	d := make([]float64, n+2)
	h := make([]float64, n+2)
	al := make([]float64, n+2)
	l := make([]float64, n+2)
	mu := make([]float64, n+2)
	z := make([]float64, n+2)
	for i := 1; i <= n; i++ {
		x[i] = float64(i) / 2.0
		y[i] = float64(i*i)/float64(n) - float64(i)
	}
	for i := 1; i <= n-1; i++ {
		h[i] = x[i+1] - x[i]
	}
	for i := 2; i <= n-1; i++ {
		al[i] = 3.0*(y[i+1]-y[i])/h[i] - 3.0*(y[i]-y[i-1])/h[i-1]
	}
	l[1], mu[1], z[1] = 1, 0, 0
	for i := 2; i <= n-1; i++ {
		l[i] = 2.0*(x[i+1]-x[i-1]) - h[i-1]*mu[i-1]
		mu[i] = h[i] / l[i]
		z[i] = (al[i] - h[i-1]*z[i-1]) / l[i]
	}
	l[n], z[n], c[n] = 1, 0, 0
	for jj := 1; jj <= n-1; jj++ {
		j := n - jj
		c[j] = z[j] - mu[j]*c[j+1]
		b[j] = (y[j+1]-y[j])/h[j] - h[j]*(c[j+1]+2.0*c[j])/3.0
		d[j] = (c[j+1] - c[j]) / (3.0 * h[j])
	}
	s := 0.0
	for i := 1; i <= n-1; i++ {
		s += b[i] + c[i] + d[i]
	}
	return s
}

// ---------------------------------------------------------------------
// seval — spline evaluation with interval search (FMM's SEVAL)
// (Table 1 row "seval").
// ---------------------------------------------------------------------

const sevalSrc = `
func seval(n: int, u: real, x: [*]real, y: [*]real, b: [*]real, c: [*]real, d: [*]real): real {
    var i: int = 1
    for k = 1 to n - 1 {
        if x[k] <= u {
            i = k
        }
    }
    var dx: real = u - x[i]
    return y[i] + dx * (b[i] + dx * (c[i] + dx * d[i]))
}

func driver(n: int, m: int): real {
    var x: [64]real
    var y: [64]real
    var b: [64]real
    var c: [64]real
    var d: [64]real
    for i = 1 to n {
        x[i] = real(i) / 2.0
        y[i] = real(i * i) / real(n) - real(i)
        b[i] = y[i] / 3.0
        c[i] = y[i] / 5.0
        d[i] = y[i] / 7.0
    }
    var s: real = 0.0
    for k = 1 to m {
        var u: real = 0.5 + real(k * (n - 1)) / real(m) / 2.0
        s = s + seval(n, u, x, y, b, c, d)
    }
    return s
}
`

func sevalRef(n, m int) float64 {
	x := make([]float64, n+2)
	y := make([]float64, n+2)
	b := make([]float64, n+2)
	c := make([]float64, n+2)
	d := make([]float64, n+2)
	for i := 1; i <= n; i++ {
		x[i] = float64(i) / 2.0
		y[i] = float64(i*i)/float64(n) - float64(i)
		b[i] = y[i] / 3.0
		c[i] = y[i] / 5.0
		d[i] = y[i] / 7.0
	}
	seval := func(u float64) float64 {
		i := 1
		for k := 1; k <= n-1; k++ {
			if x[k] <= u {
				i = k
			}
		}
		dx := u - x[i]
		return y[i] + dx*(b[i]+dx*(c[i]+dx*d[i]))
	}
	s := 0.0
	for k := 1; k <= m; k++ {
		u := 0.5 + float64(k*(n-1))/float64(m)/2.0
		s += seval(u)
	}
	return s
}

// ---------------------------------------------------------------------
// rkf45 — Runge–Kutta–Fehlberg steps (FMM's RKF45, fixed step size,
// no error control) on y' = −2·y + x (Table 1 row "rkf45"): long
// straight-line floating-point expressions full of rational constants.
// ---------------------------------------------------------------------

const rkf45Src = `
func fp(x: real, y: real): real {
    return 0.0 - 2.0 * y + x
}

func driver(steps: int): real {
    var x: real = 0.0
    var y: real = 1.0
    var h: real = 0.05
    for s = 1 to steps {
        var k1: real = h * fp(x, y)
        var k2: real = h * fp(x + h / 4.0, y + k1 / 4.0)
        var k3: real = h * fp(x + 3.0 * h / 8.0, y + 3.0 * k1 / 32.0 + 9.0 * k2 / 32.0)
        var k4: real = h * fp(x + 12.0 * h / 13.0, y + 1932.0 * k1 / 2197.0 - 7200.0 * k2 / 2197.0 + 7296.0 * k3 / 2197.0)
        var k5: real = h * fp(x + h, y + 439.0 * k1 / 216.0 - 8.0 * k2 + 3680.0 * k3 / 513.0 - 845.0 * k4 / 4104.0)
        y = y + 25.0 * k1 / 216.0 + 1408.0 * k3 / 2565.0 + 2197.0 * k4 / 4104.0 - k5 / 5.0
        x = x + h
    }
    return y
}
`

func rkf45Ref(steps int) float64 {
	fp := func(x, y float64) float64 { return 0.0 - 2.0*y + x }
	x, y, h := 0.0, 1.0, 0.05
	for s := 0; s < steps; s++ {
		k1 := h * fp(x, y)
		k2 := h * fp(x+h/4.0, y+k1/4.0)
		k3 := h * fp(x+3.0*h/8.0, y+3.0*k1/32.0+9.0*k2/32.0)
		k4 := h * fp(x+12.0*h/13.0, y+1932.0*k1/2197.0-7200.0*k2/2197.0+7296.0*k3/2197.0)
		k5 := h * fp(x+h, y+439.0*k1/216.0-8.0*k2+3680.0*k3/513.0-845.0*k4/4104.0)
		y = y + 25.0*k1/216.0 + 1408.0*k3/2565.0 + 2197.0*k4/4104.0 - k5/5.0
		x = x + h
	}
	return y
}

// ---------------------------------------------------------------------
// integr — trapezoid-rule quadrature of x² + 3x over [0,1] (Table 1
// row "integr").
// ---------------------------------------------------------------------

const integrSrc = `
func q(x: real): real {
    return x * x + 3.0 * x
}

func driver(n: int): real {
    var h: real = 1.0 / real(n)
    var s: real = (q(0.0) + q(1.0)) / 2.0
    for i = 1 to n - 1 {
        s = s + q(real(i) * h)
    }
    return s * h
}
`

func integrRef(n int) float64 {
	q := func(x float64) float64 { return x*x + 3.0*x }
	h := 1.0 / float64(n)
	s := (q(0.0) + q(1.0)) / 2.0
	for i := 1; i <= n-1; i++ {
		s += q(float64(i) * h)
	}
	return s * h
}

func init() {
	register(Routine{
		Name: "fmin", Note: "FMM golden-section minimization (Table 1 'fmin')",
		Source: fminSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(40)},
		RefFloat: floatRef(fminRef(40)), Tol: 1e-5,
	})
	register(Routine{
		Name: "zeroin", Note: "FMM root finding, bisection variant (Table 1 'zeroin')",
		Source: zeroinSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(40)},
		RefFloat: floatRef(zeroinRef(40)), Tol: 1e-5,
	})
	register(Routine{
		Name: "urand", Note: "FMM linear congruential generator (Table 1 'urand')",
		Source: urandSrc, Driver: "driver",
		Args:   []interp.Value{interp.IntVal(150)},
		RefInt: intRef(urandRef(150)),
	})
	register(Routine{
		Name: "spline", Note: "FMM natural cubic spline setup (Table 1 'spline')",
		Source: splineSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(40)},
		RefFloat: floatRef(splineRef(40)),
	})
	register(Routine{
		Name: "seval", Note: "FMM spline evaluation (Table 1 'seval')",
		Source: sevalSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(24), interp.IntVal(16)},
		RefFloat: floatRef(sevalRef(24, 16)),
	})
	register(Routine{
		Name: "rkf45", Note: "FMM Runge–Kutta–Fehlberg steps, fixed h (Table 1 'rkf45')",
		Source: rkf45Src, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(40)},
		RefFloat: floatRef(rkf45Ref(40)),
	})
	register(Routine{
		Name: "integr", Note: "trapezoid quadrature (Table 1 'integr')",
		Source: integrSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(150)},
		RefFloat: floatRef(integrRef(150)),
	})
}
