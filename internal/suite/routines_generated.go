// Generated-family routines: random ILOC programs promoted from the
// differential fuzzer's program generator (internal/progen) into the
// standing benchmark suite.  Unlike the Mini-Fortran routines, these
// are raw ILOC text (Routine.Compile parses rather than compiles
// them), so they exercise CFG shapes the front end never emits:
// fuel-trampoline loop headers, critical edges, unreachable blocks,
// and heavy φ-pressure from interleaved mutable scalars.  Each was
// produced by progen.Generate(progen.ForSeed(seed), seed) for the
// seed in its name, screened so the raw and per-pass-optimized
// programs are clean under the semantic checker's def-use discipline
// (checked mode runs over the suite), and frozen here as text so the
// suite does not shift when the generator's distribution is tuned.
// The reference results are the unoptimized interpreter's output;
// every optimization level must reproduce them exactly (the returned
// value is an integer, so reassociation's float rounding license does
// not apply).
package suite

import "repro/internal/interp"

const genSrc014 = `program globalsize=256

func main(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    loadI 0 => r4
    loadI 1 => r5
    loadI -65 => r6
    loadI 68 => r7
    loadI 84 => r8
    loadI 22 => r9
    loadF 8.0 => r10
    loadF 4.0 => r11
    loadF -4.0 => r12
    add r8, r1 => r13
    add r5, r13 => r14
    add r8, r5 => r15
    fadd r12, r12 => r16
    fadd r10, r16 => r17
    jump -> b1
b1:
    or r14, r15 => r18
    sub r8, r5 => r19
    sub r19, r18 => r20
    neg r20 => r21
    add r21, r20 => r22
    cmpGE r14, r8 => r23
    fcmpLT r11, r11 => r24
    shr r7, r7 => r25
    fneg r10 => r26
    shr r7, r7 => r27
    or r14, r15 => r28
    add r14, r5 => r15
    cmpNE r2, r4 => r29
    cbr r29 -> b4, b5
b2:
    copy r1 => r14
    copy r7 => r15
    neg r3 => r30
    shl r30, r7 => r13
    min r30, r13 => r31
    shr r14, r4 => r32
    shr r31, r15 => r33
    shr r8, r3 => r13
    jump -> b3
b3:
    sub r13, r6 => r34
    sub r34, r14 => r35
    add r35, r14 => r36
    call aux(r36, r7) => r37
    shl r2, r1 => r38
    shr r38, r38 => r39
    sub r6, r37 => r40
    sub r40, r1 => r41
    neg r41 => r42
    add r42, r8 => r43
    fdiv r17, r10 => r44
    copy r7 => r13
    and r1, r39 => r14
    jump -> exit
b4:
    add r13, r7 => r13
    copy r15 => r14
    sub r4, r13 => r45
    sub r45, r1 => r46
    neg r46 => r47
    add r47, r7 => r48
    cmpLE r47, r6 => r49
    fmul r12, r16 => r50
    fneg r10 => r51
    fadd r16, r12 => r52
    shr r15, r1 => r15
    jump -> b5
b5:
    add r13, r13 => r53
    shl r53, r53 => r54
    sub r14, r6 => r55
    sub r55, r13 => r56
    neg r56 => r57
    add r57, r1 => r58
    or r8, r5 => r59
    div r6, r59 => r60
    add r2, r4 => r15
    add r15, r13 => r61
    and r15, r4 => r15
    copy r13 => r15
    cbr r14 -> b9, b6
b6:
    call aux(r6, r2) => r62
    mul r62, r15 => r63
    fmin r12, r12 => r64
    mul r6, r62 => r65
    and r1, r62 => r66
    fdiv r12, r10 => r67
    shl r14, r14 => r14
    ret r13
b7:
    shl r53, r53 => r68
    sqrt r16 => r69
    add r14, r13 => r14
    cmpNE r68, r68 => r70
    not r68 => r71
    fmin r17, r17 => r17
    add r71, r68 => r72
    add r71, r68 => r73
    copy r7 => r15
    jump -> b10
exit:
    call print(r13, r14, r15, r16, r17)
    ret r13
b9:
    sub r9, r5 => r9
    cmpGT r9, r4 => r74
    cbr r74 -> b5, exit
b10:
    sub r9, r5 => r9
    cmpGT r9, r4 => r75
    cbr r75 -> b7, exit
orphan:
    loadI 7 => r76
    mul r76, r76 => r77
    ret r77
}

func aux(r1, r2) {
b0:
    enter(r1, r2)
    loadI 56 => r3
    loadI 192 => r4
    xor r1, r2 => r5
    add r5, r1 => r6
    and r6, r3 => r7
    add r7, r4 => r8
    stw r6 => [r8]
    ldw [r8] => r9
    add r9, r5 => r10
    ret r10
}
`

const genSrc015 = `program globalsize=256

func main(r1, r2, r3, r4, r5) {
b0:
    enter(r1, r2, r3, r4, r5)
    loadI 0 => r6
    loadI 1 => r7
    loadI -36 => r8
    loadI -90 => r9
    loadI -45 => r10
    loadI 79 => r11
    loadI 56 => r12
    loadI 60 => r13
    loadI 0 => r14
    loadI 64 => r15
    loadI 128 => r16
    loadF -0.75 => r17
    loadF 10.75 => r18
    loadF 4.0 => r19
    add r2, r3 => r20
    add r10, r8 => r21
    add r9, r3 => r22
    fadd r18, r19 => r23
    fadd r18, r4 => r24
    jump -> b1
b1:
    sub r8, r9 => r25
    sub r25, r21 => r26
    neg r26 => r27
    add r27, r21 => r28
    cmpNE r8, r9 => r29
    fmul r5, r4 => r30
    min r6, r10 => r31
    mul r22, r25 => r22
    sub r27, r26 => r32
    sub r32, r31 => r33
    neg r33 => r34
    add r34, r8 => r35
    neg r7 => r36
    sub r33, r6 => r37
    sub r37, r2 => r38
    add r38, r29 => r39
    and r29, r12 => r40
    add r40, r14 => r41
    ldw [r41] => r42
    mul r33, r21 => r43
    shl r41, r22 => r44
    shr r8, r3 => r20
    jump -> b2
b2:
    or r2, r10 => r20
    cmpGT r21, r21 => r45
    call aux(r2, r6) => r46
    fsub r18, r18 => r47
    max r8, r45 => r48
    and r7, r12 => r49
    add r49, r14 => r50
    ldw [r50] => r51
    fadd r24, r18 => r24
    add r1, r1 => r52
    or r22, r48 => r53
    fabs r17 => r54
    mul r21, r9 => r20
    cmpGT r2, r1 => r55
    cbr r55 -> b6, b4
b3:
    fsub r24, r19 => r56
    cmpNE r9, r22 => r57
    neg r2 => r58
    xor r8, r10 => r59
    fmin r24, r17 => r24
    and r9, r59 => r60
    not r59 => r61
    min r22, r57 => r22
    and r7, r59 => r62
    and r6, r12 => r63
    add r63, r15 => r64
    ldd [r64] => r65
    xor r20, r20 => r21
    jump -> b6
b4:
    or r9, r7 => r66
    mod r7, r66 => r67
    cmpGT r67, r66 => r68
    fadd r23, r18 => r23
    sub r20, r9 => r69
    sqrt r23 => r70
    add r66, r22 => r71
    not r6 => r72
    fneg r24 => r73
    add r3, r71 => r74
    fsub r5, r70 => r75
    copy r7 => r21
    cmpLE r21, r3 => r76
    cbr r76 -> b10, b8
b5:
    call aux(r9, r2) => r77
    cmpGE r10, r8 => r78
    copy r6 => r22
    min r6, r2 => r79
    add r3, r21 => r80
    and r10, r12 => r81
    add r81, r14 => r82
    stw r78 => [r82]
    sub r79, r79 => r22
    fdiv r24, r5 => r83
    or r10, r7 => r84
    div r82, r84 => r85
    min r84, r78 => r86
    copy r1 => r22
    cbr r21 -> b6, b7
b6:
    fadd r23, r19 => r23
    and r3, r13 => r87
    add r87, r16 => r88
    sts r4 => [r88]
    fmin r4, r17 => r89
    max r87, r88 => r90
    and r88, r12 => r91
    add r91, r14 => r92
    ldw [r92] => r93
    or r7, r7 => r94
    mod r94, r94 => r95
    fmul r89, r19 => r96
    max r94, r91 => r21
    fmax r23, r89 => r23
    add r87, r10 => r97
    copy r95 => r22
    min r22, r2 => r22
    copy r94 => r20
    cmpNE r21, r8 => r98
    cbr r98 -> b7, exit
b7:
    neg r10 => r99
    or r21, r20 => r100
    and r2, r13 => r101
    add r101, r16 => r102
    lds [r102] => r103
    add r9, r100 => r104
    shr r21, r104 => r21
    sub r99, r99 => r105
    call print(r8)
    cmpEQ r102, r99 => r106
    xor r10, r10 => r107
    sub r1, r99 => r108
    sub r108, r10 => r109
    add r109, r107 => r110
    xor r2, r9 => r111
    and r21, r7 => r112
    add r8, r111 => r21
    jump -> b11
b8:
    sub r21, r2 => r113
    sub r113, r3 => r114
    add r114, r21 => r115
    sub r9, r10 => r116
    sub r116, r1 => r117
    neg r117 => r118
    add r118, r117 => r119
    sub r20, r2 => r20
    max r1, r115 => r120
    call aux(r120, r116) => r121
    copy r6 => r20
    call print(r6)
    and r22, r12 => r122
    add r122, r14 => r123
    ldw [r123] => r124
    and r113, r12 => r125
    add r125, r15 => r126
    std r17 => [r126]
    fmin r23, r4 => r23
    copy r113 => r22
    copy r20 => r21
    copy r119 => r20
    jump -> b12
exit:
    call print(r20, r21, r22, r23, r24)
    add r14, r6 => r127
    ldw [r127] => r128
    call print(r128)
    ret r20
b10:
    sub r11, r7 => r11
    cmpGT r11, r6 => r129
    cbr r129 -> b4, exit
b11:
    sub r11, r7 => r11
    cmpGT r11, r6 => r130
    cbr r130 -> b5, exit
b12:
    sub r11, r7 => r11
    cmpGT r11, r6 => r131
    cbr r131 -> b1, exit
}

func aux(r1, r2) {
b0:
    enter(r1, r2)
    loadI 56 => r3
    loadI 192 => r4
    mul r1, r2 => r5
    add r5, r1 => r6
    and r6, r3 => r7
    add r7, r4 => r8
    stw r6 => [r8]
    ldw [r8] => r9
    add r9, r5 => r10
    ret r10
}
`

const genSrc054 = `program globalsize=256

func main(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    loadI 0 => r4
    loadI 1 => r5
    loadI -81 => r6
    loadI 2 => r7
    loadI 64 => r8
    loadI 59 => r9
    loadI 56 => r10
    loadI 60 => r11
    loadI 0 => r12
    loadI 64 => r13
    loadI 128 => r14
    add r8, r1 => r15
    add r5, r15 => r16
    add r6, r16 => r17
    jump -> b1
b1:
    and r2, r10 => r18
    add r18, r12 => r19
    stw r17 => [r19]
    sub r19, r5 => r20
    sub r20, r15 => r21
    add r21, r17 => r22
    cmpEQ r15, r15 => r23
    and r2, r10 => r24
    add r24, r12 => r25
    ldw [r25] => r26
    sub r16, r8 => r16
    cmpEQ r7, r6 => r27
    cbr r27 -> b2, b3
b2:
    add r8, r5 => r28
    and r15, r10 => r29
    add r29, r12 => r30
    ldw [r30] => r31
    and r16, r10 => r32
    add r32, r12 => r33
    ldw [r33] => r34
    shl r15, r28 => r15
    add r16, r15 => r16
    jump -> b3
b3:
    add r8, r5 => r35
    sub r2, r4 => r36
    call print(r35)
    sub r2, r4 => r37
    copy r6 => r16
    cbr r17 -> b5, exit
exit:
    call print(r15, r16, r17)
    add r12, r4 => r38
    ldw [r38] => r39
    call print(r39)
    ret r15
b5:
    sub r9, r5 => r9
    cmpGT r9, r4 => r40
    cbr r40 -> b2, exit
}

func aux(r1, r2) {
b0:
    enter(r1, r2)
    loadI 56 => r3
    loadI 192 => r4
    mul r1, r2 => r5
    add r5, r1 => r6
    and r6, r3 => r7
    add r7, r4 => r8
    stw r6 => [r8]
    ldw [r8] => r9
    add r9, r5 => r10
    ret r10
}
`

func init() {
	register(Routine{
		Name:   "gen014",
		Note:   "progen seed 14: looping mixed int/float body with aux calls and an orphan block",
		Source: genSrc014,
		Driver: "main",
		Args:   []interp.Value{interp.IntVal(1), interp.IntVal(2), interp.IntVal(3)},
		RefInt: intRef(153),
	})
	register(Routine{
		Name:   "gen015",
		Note:   "progen seed 15: largest promoted program — memory arena traffic, 5.3k-step loop nest",
		Source: genSrc015,
		Driver: "main",
		Args: []interp.Value{interp.IntVal(1), interp.IntVal(2), interp.IntVal(3),
			interp.FloatVal(4.5), interp.FloatVal(5.5)},
		RefInt: intRef(1),
	})
	register(Routine{
		Name:   "gen054",
		Note:   "progen seed 54: compact scalar kernel whose result exercises full 64-bit range",
		Source: genSrc054,
		Driver: "main",
		Args:   []interp.Value{interp.IntVal(1), interp.IntVal(2), interp.IntVal(3)},
		RefInt: intRef(288230376151711744),
	})
}
