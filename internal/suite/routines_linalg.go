package suite

import (
	"math"

	"repro/internal/interp"
)

// ---------------------------------------------------------------------
// saxpy — the BLAS level-1 kernel (paper Table 1 row "saxpy"):
// single-precision y ← a·x + y, 1-D address arithmetic.
// ---------------------------------------------------------------------

const saxpySrc = `
func saxpy(n: int, a: real, x: [*]real4, y: [*]real4) {
    for i = 1 to n {
        y[i] = a * x[i] + y[i]
    }
}

func driver(n: int): real {
    var x: [128]real4
    var y: [128]real4
    for i = 1 to n {
        x[i] = real(i) / 4.0
        y[i] = real(2 * i)
    }
    saxpy(n, 3.0, x, y)
    var s: real = 0.0
    for i = 1 to n {
        s = s + y[i]
    }
    return s
}
`

func saxpyRef(n int) float64 {
	x := make([]float32, n+1)
	y := make([]float32, n+1)
	for i := 1; i <= n; i++ {
		x[i] = float32(float64(i) / 4.0)
		y[i] = float32(2 * i)
	}
	for i := 1; i <= n; i++ {
		y[i] = float32(3.0*float64(x[i]) + float64(y[i]))
	}
	s := 0.0
	for i := 1; i <= n; i++ {
		s += float64(y[i])
	}
	return s
}

// ---------------------------------------------------------------------
// sgemv — BLAS level-2 matrix–vector product (Table 1 row "sgemv"):
// column-major 2-D addressing, the inner loop invariant in j.
// ---------------------------------------------------------------------

const sgemvSrc = `
func sgemv(m: int, n: int, a: [m,*]real4, x: [*]real4, y: [*]real4) {
    for j = 1 to n {
        for i = 1 to m {
            y[i] = y[i] + a[i,j] * x[j]
        }
    }
}

func driver(m: int, n: int): real {
    var a: [20,20]real4
    var x: [20]real4
    var y: [20]real4
    for j = 1 to n {
        x[j] = real(j) / 8.0
        for i = 1 to m {
            a[i,j] = real(i - j) / 2.0
        }
    }
    for i = 1 to m {
        y[i] = 1.0
    }
    sgemv(m, n, a, x, y)
    var s: real = 0.0
    for i = 1 to m {
        s = s + y[i]
    }
    return s
}
`

func sgemvRef(m, n int) float64 {
	a := make([][]float32, m+1)
	for i := range a {
		a[i] = make([]float32, n+1)
	}
	x := make([]float32, n+1)
	y := make([]float32, m+1)
	for j := 1; j <= n; j++ {
		x[j] = float32(float64(j) / 8.0)
		for i := 1; i <= m; i++ {
			a[i][j] = float32(float64(i-j) / 2.0)
		}
	}
	for i := 1; i <= m; i++ {
		y[i] = 1.0
	}
	for j := 1; j <= n; j++ {
		for i := 1; i <= m; i++ {
			y[i] = float32(float64(y[i]) + float64(a[i][j])*float64(x[j]))
		}
	}
	s := 0.0
	for i := 1; i <= m; i++ {
		s += float64(y[i])
	}
	return s
}

// ---------------------------------------------------------------------
// sgemm — matrix multiply (Table 1 rows "sgemm"/"matrix300"): triple
// loop, the classic target for reassociated address arithmetic.
// ---------------------------------------------------------------------

const sgemmSrc = `
func sgemm(n: int, a: [n,*]real, b: [n,*]real, c: [n,*]real) {
    for j = 1 to n {
        for i = 1 to n {
            var s: real = 0.0
            for k = 1 to n {
                s = s + a[i,k] * b[k,j]
            }
            c[i,j] = s
        }
    }
}

func driver(n: int): real {
    var a: [12,12]real
    var b: [12,12]real
    var c: [12,12]real
    for j = 1 to n {
        for i = 1 to n {
            a[i,j] = real(i + 2 * j) / 3.0
            b[i,j] = real(i - j) / 5.0
        }
    }
    sgemm(n, a, b, c)
    var s: real = 0.0
    for j = 1 to n {
        for i = 1 to n {
            s = s + c[i,j]
        }
    }
    return s
}
`

func sgemmRef(n int) float64 {
	a := make([][]float64, n+1)
	b := make([][]float64, n+1)
	for i := 0; i <= n; i++ {
		a[i] = make([]float64, n+1)
		b[i] = make([]float64, n+1)
	}
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			a[i][j] = float64(i+2*j) / 3.0
			b[i][j] = float64(i-j) / 5.0
		}
	}
	s := 0.0
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			c := 0.0
			for k := 1; k <= n; k++ {
				c += a[i][k] * b[k][j]
			}
			s += c
		}
	}
	return s
}

// ---------------------------------------------------------------------
// decomp — LU decomposition (FMM's DECOMP, simplified to the
// diagonally dominant case without pivoting) (Table 1 row "decomp").
// ---------------------------------------------------------------------

const decompSrc = `
func decomp(n: int, a: [n,*]real) {
    for k = 1 to n - 1 {
        for i = k + 1 to n {
            a[i,k] = a[i,k] / a[k,k]
            for j = k + 1 to n {
                a[i,j] = a[i,j] - a[i,k] * a[k,j]
            }
        }
    }
}

func driver(n: int): real {
    var a: [10,10]real
    for j = 1 to n {
        for i = 1 to n {
            if i == j {
                a[i,j] = real(n + i)
            } else {
                a[i,j] = 1.0 / real(i + j)
            }
        }
    }
    decomp(n, a)
    var s: real = 0.0
    for j = 1 to n {
        for i = 1 to n {
            s = s + a[i,j]
        }
    }
    return s
}
`

func decompRef(n int) float64 {
	a := make([][]float64, n+1)
	for i := 0; i <= n; i++ {
		a[i] = make([]float64, n+1)
	}
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			if i == j {
				a[i][j] = float64(n + i)
			} else {
				a[i][j] = 1.0 / float64(i+j)
			}
		}
	}
	for k := 1; k <= n-1; k++ {
		for i := k + 1; i <= n; i++ {
			a[i][k] = a[i][k] / a[k][k]
			for j := k + 1; j <= n; j++ {
				a[i][j] -= a[i][k] * a[k][j]
			}
		}
	}
	s := 0.0
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			s += a[i][j]
		}
	}
	return s
}

// ---------------------------------------------------------------------
// solve — forward/back substitution against the decomp factors (FMM's
// SOLVE) (Table 1 row "solve").
// ---------------------------------------------------------------------

const solveSrc = `
func decomp(n: int, a: [n,*]real) {
    for k = 1 to n - 1 {
        for i = k + 1 to n {
            a[i,k] = a[i,k] / a[k,k]
            for j = k + 1 to n {
                a[i,j] = a[i,j] - a[i,k] * a[k,j]
            }
        }
    }
}

func solve(n: int, a: [n,*]real, b: [*]real) {
    for k = 1 to n - 1 {
        for i = k + 1 to n {
            b[i] = b[i] - a[i,k] * b[k]
        }
    }
    for kk = 0 to n - 1 {
        k = n - kk
        b[k] = b[k] / a[k,k]
        for i = 1 to k - 1 {
            b[i] = b[i] - a[i,k] * b[k]
        }
    }
}

func driver(n: int): real {
    var a: [10,10]real
    var b: [10]real
    for j = 1 to n {
        for i = 1 to n {
            if i == j {
                a[i,j] = real(n + i)
            } else {
                a[i,j] = 1.0 / real(i + j)
            }
        }
        b[j] = real(j)
    }
    decomp(n, a)
    solve(n, a, b)
    var s: real = 0.0
    for i = 1 to n {
        s = s + b[i]
    }
    return s
}
`

func solveRef(n int) float64 {
	a := make([][]float64, n+1)
	for i := 0; i <= n; i++ {
		a[i] = make([]float64, n+1)
	}
	b := make([]float64, n+1)
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			if i == j {
				a[i][j] = float64(n + i)
			} else {
				a[i][j] = 1.0 / float64(i+j)
			}
		}
		b[j] = float64(j)
	}
	for k := 1; k <= n-1; k++ {
		for i := k + 1; i <= n; i++ {
			a[i][k] = a[i][k] / a[k][k]
			for j := k + 1; j <= n; j++ {
				a[i][j] -= a[i][k] * a[k][j]
			}
		}
	}
	for k := 1; k <= n-1; k++ {
		for i := k + 1; i <= n; i++ {
			b[i] -= a[i][k] * b[k]
		}
	}
	for kk := 0; kk <= n-1; kk++ {
		k := n - kk
		b[k] = b[k] / a[k][k]
		for i := 1; i <= k-1; i++ {
			b[i] -= a[i][k] * b[k]
		}
	}
	s := 0.0
	for i := 1; i <= n; i++ {
		s += b[i]
	}
	return s
}

// ---------------------------------------------------------------------
// svd — the column-norm/Householder-scale fragment at the heart of
// FMM's SVD (Table 1 row "svd"): sqrt-heavy column sweeps.
// ---------------------------------------------------------------------

const svdSrc = `
func colnorms(m: int, n: int, a: [m,*]real, w: [*]real) {
    for j = 1 to n {
        var s: real = 0.0
        for i = 1 to m {
            s = s + a[i,j] * a[i,j]
        }
        w[j] = sqrt(s)
        if w[j] > 0.0 {
            for i = 1 to m {
                a[i,j] = a[i,j] / w[j]
            }
        }
    }
}

func driver(m: int, n: int): real {
    var a: [16,16]real
    var w: [16]real
    for j = 1 to n {
        for i = 1 to m {
            a[i,j] = real(i * j) / real(m + n)
        }
    }
    colnorms(m, n, a, w)
    var s: real = 0.0
    for j = 1 to n {
        s = s + w[j]
        s = s + a[j,j]
    }
    return s
}
`

func svdRef(m, n int) float64 {
	a := make([][]float64, m+1)
	for i := 0; i <= m; i++ {
		a[i] = make([]float64, n+1)
	}
	w := make([]float64, n+1)
	for j := 1; j <= n; j++ {
		for i := 1; i <= m; i++ {
			a[i][j] = float64(i*j) / float64(m+n)
		}
	}
	for j := 1; j <= n; j++ {
		s := 0.0
		for i := 1; i <= m; i++ {
			s += a[i][j] * a[i][j]
		}
		w[j] = sqrt(s)
		if w[j] > 0 {
			for i := 1; i <= m; i++ {
				a[i][j] /= w[j]
			}
		}
	}
	s := 0.0
	for j := 1; j <= n; j++ {
		s += w[j] + a[j][j]
	}
	return s
}

// ---------------------------------------------------------------------
// iniset — array initialization with heavy index arithmetic (Table 1
// row "iniset"); every iteration recomputes overlapping subscript
// expressions that GVN+PRE should common.
// ---------------------------------------------------------------------

const inisetSrc = `
func iniset(n: int, v: [*]int) {
    for i = 1 to n {
        v[i] = 0
    }
    for i = 1 to n / 2 {
        v[2 * i - 1] = i + 1
        v[2 * i] = i * i + 2 * i + 1
    }
}

func driver(n: int): int {
    var v: [256]int
    iniset(n, v)
    var s: int = 0
    for i = 1 to n {
        s = s + v[i] * i
    }
    return s
}
`

func inisetRef(n int) int64 {
	v := make([]int64, n+1)
	for i := int64(1); i <= int64(n)/2; i++ {
		v[2*i-1] = i + 1
		v[2*i] = i*i + 2*i + 1
	}
	var s int64
	for i := int64(1); i <= int64(n); i++ {
		s += v[i] * i
	}
	return s
}

// ---------------------------------------------------------------------
// x21y21 — small polynomial-power kernel (Table 1 row "x21y2i"):
// x^21 + y^21 via repeated multiplication, pure scalar integer code.
// ---------------------------------------------------------------------

const x21y21Src = `
func pow21(x: int): int {
    var p: int = x
    var x2: int = x * x
    var x4: int = x2 * x2
    var x8: int = x4 * x4
    var x16: int = x8 * x8
    p = x16 * x4
    p = p * x
    return p
}

func driver(x: int, y: int): int {
    var s: int = 0
    for i = 1 to 20 {
        s = s + pow21(x + i) + pow21(y - i)
    }
    return s
}
`

func x21y21Ref(x, y int64) int64 {
	pow21 := func(v int64) int64 {
		x2 := v * v
		x4 := x2 * x2
		x8 := x4 * x4
		x16 := x8 * x8
		return x16 * x4 * v
	}
	var s int64
	for i := int64(1); i <= 20; i++ {
		s += pow21(x+i) + pow21(y-i)
	}
	return s
}

// ---------------------------------------------------------------------
// repvid — strided 2-D block copies (Table 1 row "repvid"): integer
// arrays, addressing with two induction variables.
// ---------------------------------------------------------------------

const repvidSrc = `
func blit(w: int, h: int, src: [w,*]int, dst: [w,*]int, dx: int, dy: int) {
    for j = 1 to h - dy {
        for i = 1 to w - dx {
            dst[i + dx, j + dy] = src[i, j]
        }
    }
}

func driver(w: int, h: int): int {
    var src: [16,16]int
    var dst: [16,16]int
    for j = 1 to h {
        for i = 1 to w {
            src[i,j] = i * 37 + j * 11
            dst[i,j] = 0
        }
    }
    blit(w, h, src, dst, 2, 3)
    blit(w, h, dst, src, 1, 1)
    var s: int = 0
    for j = 1 to h {
        for i = 1 to w {
            s = s + src[i,j] + 2 * dst[i,j]
        }
    }
    return s
}
`

func repvidRef(w, h int) int64 {
	src := make([][]int64, w+1)
	dst := make([][]int64, w+1)
	for i := 0; i <= w; i++ {
		src[i] = make([]int64, h+1)
		dst[i] = make([]int64, h+1)
	}
	for j := 1; j <= h; j++ {
		for i := 1; i <= w; i++ {
			src[i][j] = int64(i*37 + j*11)
		}
	}
	blit := func(s, d [][]int64, dx, dy int) {
		for j := 1; j <= h-dy; j++ {
			for i := 1; i <= w-dx; i++ {
				d[i+dx][j+dy] = s[i][j]
			}
		}
	}
	blit(src, dst, 2, 3)
	blit(dst, src, 1, 1)
	var sum int64
	for j := 1; j <= h; j++ {
		for i := 1; i <= w; i++ {
			sum += src[i][j] + 2*dst[i][j]
		}
	}
	return sum
}

// ---------------------------------------------------------------------
// colbur — integer convolution-style kernel (Table 1 row "colbur").
// ---------------------------------------------------------------------

const colburSrc = `
func conv(n: int, a: [*]int, k: [*]int, out: [*]int) {
    for i = 3 to n - 2 {
        out[i] = a[i-2]*k[1] + a[i-1]*k[2] + a[i]*k[3] + a[i+1]*k[4] + a[i+2]*k[5]
    }
}

func driver(n: int): int {
    var a: [128]int
    var k: [5]int
    var out: [128]int
    for i = 1 to n {
        a[i] = i % 17 - 8
        out[i] = 0
    }
    for i = 1 to 5 {
        k[i] = i * i - 6
    }
    conv(n, a, k, out)
    var s: int = 0
    for i = 1 to n {
        s = s + out[i] * i
    }
    return s
}
`

func colburRef(n int) int64 {
	a := make([]int64, n+3)
	k := make([]int64, 6)
	out := make([]int64, n+3)
	for i := 1; i <= n; i++ {
		a[i] = int64(i%17 - 8)
	}
	for i := int64(1); i <= 5; i++ {
		k[i] = i*i - 6
	}
	for i := 3; i <= n-2; i++ {
		out[i] = a[i-2]*k[1] + a[i-1]*k[2] + a[i]*k[3] + a[i+1]*k[4] + a[i+2]*k[5]
	}
	var s int64
	for i := 1; i <= n; i++ {
		s += out[i] * int64(i)
	}
	return s
}

func init() {
	register(Routine{
		Name: "saxpy", Note: "BLAS-1 a·x+y over real4 (Table 1 'saxpy')",
		Source: saxpySrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(100)},
		RefFloat: floatRef(saxpyRef(100)),
	})
	register(Routine{
		Name: "sgemv", Note: "BLAS-2 matrix–vector product (Table 1 'sgemv')",
		Source: sgemvSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(20), interp.IntVal(20)},
		RefFloat: floatRef(sgemvRef(20, 20)),
	})
	register(Routine{
		Name: "sgemm", Note: "matrix multiply (Table 1 'sgemm'/'matrix300')",
		Source: sgemmSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(12)},
		RefFloat: floatRef(sgemmRef(12)),
	})
	register(Routine{
		Name: "decomp", Note: "FMM LU decomposition (Table 1 'decomp')",
		Source: decompSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(10)},
		RefFloat: floatRef(decompRef(10)),
	})
	register(Routine{
		Name: "solve", Note: "FMM forward/back substitution (Table 1 'solve')",
		Source: solveSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(10)},
		RefFloat: floatRef(solveRef(10)),
	})
	register(Routine{
		Name: "svd", Note: "FMM SVD column-norm fragment (Table 1 'svd')",
		Source: svdSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(16), interp.IntVal(16)},
		RefFloat: floatRef(svdRef(16, 16)),
	})
	register(Routine{
		Name: "iniset", Note: "array initialization, index arithmetic (Table 1 'iniset')",
		Source: inisetSrc, Driver: "driver",
		Args:   []interp.Value{interp.IntVal(200)},
		RefInt: intRef(inisetRef(200)),
	})
	register(Routine{
		Name: "x21y21", Note: "polynomial powers, straight-line scalar code (Table 1 'x21y2i')",
		Source: x21y21Src, Driver: "driver",
		Args:   []interp.Value{interp.IntVal(3), interp.IntVal(5)},
		RefInt: intRef(x21y21Ref(3, 5)),
	})
	register(Routine{
		Name: "repvid", Note: "strided 2-D block copies (Table 1 'repvid')",
		Source: repvidSrc, Driver: "driver",
		Args:   []interp.Value{interp.IntVal(16), interp.IntVal(16)},
		RefInt: intRef(repvidRef(16, 16)),
	})
	register(Routine{
		Name: "colbur", Note: "integer 5-tap convolution (Table 1 'colbur')",
		Source: colburSrc, Driver: "driver",
		Args:   []interp.Value{interp.IntVal(100)},
		RefInt: intRef(colburRef(100)),
	})
}

func sqrt(x float64) float64 { return math.Sqrt(x) }
