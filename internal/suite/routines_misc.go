package suite

import "repro/internal/interp"

// SPEC-style kernels and the paper's own running example.

// ---------------------------------------------------------------------
// foo — the paper's running example (Figure 2): the loop whose body
// the full pipeline shortens by one operation.
// ---------------------------------------------------------------------

const fooSrc = `
func foo(y: int, z: int): int {
    var s: int = 0
    var x: int = y + z
    for i = x to 100 {
        s = 1 + s + x
    }
    return s
}

func driver(y: int, z: int): int {
    var t: int = 0
    for r = 1 to 50 {
        t = t + foo(y, z + r % 3)
    }
    return t
}
`

func fooRef(y, z int64) int64 {
	foo := func(y, z int64) int64 {
		var s int64
		x := y + z
		for i := x; i <= 100; i++ {
			s = 1 + s + x
		}
		return s
	}
	var t int64
	for r := int64(1); r <= 50; r++ {
		t += foo(y, z+r%3)
	}
	return t
}

// ---------------------------------------------------------------------
// tomcatv — mesh-relaxation sweep in the style of SPEC's TOMCATV
// (Table 1 row "tomcatv"): 2-D neighbor stencils over coupled grids.
// ---------------------------------------------------------------------

const tomcatvSrc = `
func relax(n: int, x: [n,*]real, y: [n,*]real, rx: [n,*]real, ry: [n,*]real) {
    for j = 2 to n - 1 {
        for i = 2 to n - 1 {
            var xx: real = x[i+1,j] - x[i-1,j]
            var yx: real = y[i+1,j] - y[i-1,j]
            var xy: real = x[i,j+1] - x[i,j-1]
            var yy: real = y[i,j+1] - y[i,j-1]
            var a: real = 0.25 * (xy * xy + yy * yy)
            var b: real = 0.25 * (xx * xx + yx * yx)
            var c: real = 0.125 * (xx * xy + yx * yy)
            rx[i,j] = a * (x[i+1,j] + x[i-1,j]) + b * (x[i,j+1] + x[i,j-1]) - c * (x[i+1,j+1] - x[i+1,j-1] - x[i-1,j+1] + x[i-1,j-1])
            ry[i,j] = a * (y[i+1,j] + y[i-1,j]) + b * (y[i,j+1] + y[i,j-1]) - c * (y[i+1,j+1] - y[i+1,j-1] - y[i-1,j+1] + y[i-1,j-1])
        }
    }
    for j = 2 to n - 1 {
        for i = 2 to n - 1 {
            x[i,j] = x[i,j] + 0.001 * (rx[i,j] - x[i,j])
            y[i,j] = y[i,j] + 0.001 * (ry[i,j] - y[i,j])
        }
    }
}

func driver(n: int, sweeps: int): real {
    var x: [16,16]real
    var y: [16,16]real
    var rx: [16,16]real
    var ry: [16,16]real
    for j = 1 to n {
        for i = 1 to n {
            x[i,j] = real(i) + 0.1 * real(j)
            y[i,j] = real(j) - 0.05 * real(i)
            rx[i,j] = 0.0
            ry[i,j] = 0.0
        }
    }
    for s = 1 to sweeps {
        relax(n, x, y, rx, ry)
    }
    var t: real = 0.0
    for j = 1 to n {
        for i = 1 to n {
            t = t + x[i,j] - y[i,j]
        }
    }
    return t
}
`

func tomcatvRef(n, sweeps int) float64 {
	mk := func() [][]float64 {
		g := make([][]float64, n+2)
		for i := range g {
			g[i] = make([]float64, n+2)
		}
		return g
	}
	x, y, rx, ry := mk(), mk(), mk(), mk()
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			x[i][j] = float64(i) + 0.1*float64(j)
			y[i][j] = float64(j) - 0.05*float64(i)
		}
	}
	for s := 0; s < sweeps; s++ {
		for j := 2; j <= n-1; j++ {
			for i := 2; i <= n-1; i++ {
				xx := x[i+1][j] - x[i-1][j]
				yx := y[i+1][j] - y[i-1][j]
				xy := x[i][j+1] - x[i][j-1]
				yy := y[i][j+1] - y[i][j-1]
				a := 0.25 * (xy*xy + yy*yy)
				b := 0.25 * (xx*xx + yx*yx)
				c := 0.125 * (xx*xy + yx*yy)
				rx[i][j] = a*(x[i+1][j]+x[i-1][j]) + b*(x[i][j+1]+x[i][j-1]) - c*(x[i+1][j+1]-x[i+1][j-1]-x[i-1][j+1]+x[i-1][j-1])
				ry[i][j] = a*(y[i+1][j]+y[i-1][j]) + b*(y[i][j+1]+y[i][j-1]) - c*(y[i+1][j+1]-y[i+1][j-1]-y[i-1][j+1]+y[i-1][j-1])
			}
		}
		for j := 2; j <= n-1; j++ {
			for i := 2; i <= n-1; i++ {
				x[i][j] += 0.001 * (rx[i][j] - x[i][j])
				y[i][j] += 0.001 * (ry[i][j] - y[i][j])
			}
		}
	}
	t := 0.0
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			t += x[i][j] - y[i][j]
		}
	}
	return t
}

// ---------------------------------------------------------------------
// heat — 1-D explicit heat equation over a single-precision array
// (Table 1 row "heat"): real4 loads/stores with elem size 4.
// ---------------------------------------------------------------------

const heatSrc = `
func hstep(n: int, u: [*]real4, un: [*]real4, r: real) {
    for i = 2 to n - 1 {
        un[i] = u[i] + r * (u[i+1] - 2.0 * u[i] + u[i-1])
    }
    for i = 2 to n - 1 {
        u[i] = un[i]
    }
}

func driver(n: int, steps: int): real {
    var u: [96]real4
    var un: [96]real4
    for i = 1 to n {
        u[i] = 0.0
        un[i] = 0.0
    }
    u[n / 2] = 100.0
    for s = 1 to steps {
        hstep(n, u, un, 0.25)
    }
    var t: real = 0.0
    for i = 1 to n {
        t = t + u[i] * real(i)
    }
    return t
}
`

func heatRef(n, steps int) float64 {
	u := make([]float32, n+2)
	un := make([]float32, n+2)
	u[n/2] = 100.0
	for s := 0; s < steps; s++ {
		for i := 2; i <= n-1; i++ {
			un[i] = float32(float64(u[i]) + 0.25*(float64(u[i+1])-2.0*float64(u[i])+float64(u[i-1])))
		}
		for i := 2; i <= n-1; i++ {
			u[i] = un[i]
		}
	}
	t := 0.0
	for i := 1; i <= n; i++ {
		t += float64(u[i]) * float64(i)
	}
	return t
}

// ---------------------------------------------------------------------
// gamgen — gamma-table generation by recurrence (Table 1 row
// "gamgen"): products and quotients building a lookup table.
// ---------------------------------------------------------------------

const gamgenSrc = `
func driver(n: int): real {
    var g: [128]real
    g[1] = 1.0
    for i = 2 to n {
        g[i] = g[i-1] * (real(i) - 0.5) / (real(i) + 0.5)
    }
    var s: real = 0.0
    for i = 1 to n {
        s = s + g[i] * g[i] + g[i] / real(i)
    }
    return s
}
`

func gamgenRef(n int) float64 {
	g := make([]float64, n+1)
	g[1] = 1.0
	for i := 2; i <= n; i++ {
		g[i] = g[i-1] * (float64(i) - 0.5) / (float64(i) + 0.5)
	}
	s := 0.0
	for i := 1; i <= n; i++ {
		s += g[i]*g[i] + g[i]/float64(i)
	}
	return s
}

// ---------------------------------------------------------------------
// hmoy — harmonic-style averaging (Table 1 row "hmoy").
// ---------------------------------------------------------------------

const hmoySrc = `
func driver(n: int): real {
    var x: [128]real
    for i = 1 to n {
        x[i] = real(i) + 0.5
    }
    var s: real = 0.0
    for i = 1 to n {
        s = s + 1.0 / x[i]
    }
    return real(n) / s
}
`

func hmoyRef(n int) float64 {
	s := 0.0
	for i := 1; i <= n; i++ {
		s += 1.0 / (float64(i) + 0.5)
	}
	return float64(n) / s
}

// ---------------------------------------------------------------------
// deseco — decision-heavy kernel (after SPEC doduc's deseco, Table 1
// row "deseco"): an if/else diamond recomputing shared subexpressions
// on both paths and after the join — the §2 motivating shape for PRE.
// ---------------------------------------------------------------------

const desecoSrc = `
func driver(n: int): real {
    var a: [128]real
    var b: [128]real
    for i = 1 to n {
        a[i] = real(i) / 3.0
        b[i] = real(n - i) / 7.0
    }
    var s: real = 0.0
    for i = 1 to n {
        var t: real = a[i] * b[i] + 2.0
        var u: real = 0.0
        if t > 14.0 {
            u = a[i] * b[i] - 1.0
        } else {
            u = a[i] * b[i] + 1.0
        }
        s = s + u + a[i] * b[i]
    }
    return s
}
`

func desecoRef(n int) float64 {
	a := make([]float64, n+1)
	b := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		a[i] = float64(i) / 3.0
		b[i] = float64(n-i) / 7.0
	}
	s := 0.0
	for i := 1; i <= n; i++ {
		t := a[i]*b[i] + 2.0
		var u float64
		if t > 14.0 {
			u = a[i]*b[i] - 1.0
		} else {
			u = a[i]*b[i] + 1.0
		}
		s += u + a[i]*b[i]
	}
	return s
}

// ---------------------------------------------------------------------
// fpppp — a large straight-line basic block of floating-point
// expressions with many repeated subexpressions, in the style of
// SPEC's FPPPP electron-integral kernels (Table 1 row "fpppp").
// ---------------------------------------------------------------------

const fppppSrc = `
func kernel(x1: real, y1: real, z1: real, x2: real, y2: real, z2: real): real {
    var dx: real = x1 - x2
    var dy: real = y1 - y2
    var dz: real = z1 - z2
    var r2: real = dx * dx + dy * dy + dz * dz
    var r4: real = (dx * dx + dy * dy + dz * dz) * (dx * dx + dy * dy + dz * dz)
    var t1: real = (x1 - x2) * (y1 - y2) + (y1 - y2) * (z1 - z2) + (z1 - z2) * (x1 - x2)
    var t2: real = (x1 - x2) * (y1 - y2) - (y1 - y2) * (z1 - z2)
    var t3: real = r2 * t1 + r4 * t2
    var t4: real = r2 * t1 - r4 * t2
    return t3 * t4 + r2 + t1
}

func driver(n: int): real {
    var s: real = 0.0
    for i = 1 to n {
        var fi: real = real(i)
        s = s + kernel(fi, fi * 0.5, fi * 0.25, 1.0, 2.0, 3.0)
    }
    return s
}
`

func fppppRef(n int) float64 {
	kernel := func(x1, y1, z1, x2, y2, z2 float64) float64 {
		dx := x1 - x2
		dy := y1 - y2
		dz := z1 - z2
		r2 := dx*dx + dy*dy + dz*dz
		r4 := (dx*dx + dy*dy + dz*dz) * (dx*dx + dy*dy + dz*dz)
		t1 := (x1-x2)*(y1-y2) + (y1-y2)*(z1-z2) + (z1-z2)*(x1-x2)
		t2 := (x1-x2)*(y1-y2) - (y1-y2)*(z1-z2)
		t3 := r2*t1 + r4*t2
		t4 := r2*t1 - r4*t2
		return t3*t4 + r2 + t1
	}
	s := 0.0
	for i := 1; i <= n; i++ {
		fi := float64(i)
		s += kernel(fi, fi*0.5, fi*0.25, 1.0, 2.0, 3.0)
	}
	return s
}

func init() {
	register(Routine{
		Name: "foo", Note: "the paper's running example (Figure 2)",
		Source: fooSrc, Driver: "driver",
		Args:   []interp.Value{interp.IntVal(1), interp.IntVal(2)},
		RefInt: intRef(fooRef(1, 2)),
	})
	register(Routine{
		Name: "tomcatv", Note: "SPEC TOMCATV-style mesh relaxation (Table 1 'tomcatv')",
		Source: tomcatvSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(16), interp.IntVal(3)},
		RefFloat: floatRef(tomcatvRef(16, 3)),
	})
	register(Routine{
		Name: "heat", Note: "1-D explicit heat stencil over real4 (Table 1 'heat')",
		Source: heatSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(80), interp.IntVal(20)},
		RefFloat: floatRef(heatRef(80, 20)), Tol: 1e-4,
	})
	register(Routine{
		Name: "gamgen", Note: "table generation by recurrence (Table 1 'gamgen')",
		Source: gamgenSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(100)},
		RefFloat: floatRef(gamgenRef(100)),
	})
	register(Routine{
		Name: "hmoy", Note: "harmonic mean (Table 1 'hmoy')",
		Source: hmoySrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(100)},
		RefFloat: floatRef(hmoyRef(100)),
	})
	register(Routine{
		Name: "deseco", Note: "if/else diamond with shared subexpressions (Table 1 'deseco')",
		Source: desecoSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(100)},
		RefFloat: floatRef(desecoRef(100)),
	})
	register(Routine{
		Name: "fpppp", Note: "large straight-line FP block, repeated subexpressions (Table 1 'fpppp')",
		Source: fppppSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(60)},
		RefFloat: floatRef(fppppRef(60)),
	})
}
