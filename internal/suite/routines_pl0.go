package suite

import "repro/internal/interp"

// The PL/0 family: procedural workloads compiled through the second
// front end (internal/pl0).  The paper's suite was FORTRAN; these
// routines exercise the shapes FORTRAN-style procedural code produces
// that the Mini-Fortran family underrepresents — nested procedures
// with up-level addressing, deep call chains, recursion, and 1-based
// array subscripting lowered through the naive §3.1 address chains
// (base + (i-1)*8 rebuilt at every reference) that reassociation and
// PRE were designed to clean up.

// ---------------------------------------------------------------------
// pl0gcd — subtraction-form Euclid under a driver loop.  The loop body
// rebuilds the two argument expressions and a loop-invariant bias every
// iteration; PRE hoists the invariants, the call stays a barrier.
// ---------------------------------------------------------------------

const pl0gcdSrc = `
procedure gcd(a, b);
begin
    while a # b do
        if a > b then a := a - b
        else b := b - a;
    gcd := a
end;

procedure pl0gcd(n);
var i, s;
begin
    s := 0;
    i := 1;
    while i <= n do begin
        s := s + gcd(i * 6 + 12, i * 4 + 8) + (n * 3 + 7);
        i := i + 1
    end;
    pl0gcd := s
end;

write pl0gcd(40).
`

func pl0gcdRef(n int64) int64 {
	gcd := func(a, b int64) int64 {
		for a != b {
			if a > b {
				a -= b
			} else {
				b -= a
			}
		}
		return a
	}
	var s int64
	for i := int64(1); i <= n; i++ {
		s += gcd(i*6+12, i*4+8) + (n*3 + 7)
	}
	return s
}

// ---------------------------------------------------------------------
// pl0ack — Ackermann's function, the recursion stressor: every value
// flows through call/return, so the optimizer wins only inside the
// small bodies and the driver loop.
// ---------------------------------------------------------------------

const pl0ackSrc = `
procedure ack(m, n);
begin
    if m = 0 then ack := n + 1
    else if n = 0 then ack := ack(m - 1, 1)
    else ack := ack(m - 1, ack(m, n - 1))
end;

procedure pl0ack(k);
var i, s;
begin
    s := 0;
    i := 1;
    while i <= k do begin
        s := s + ack(1, i) + ack(2, i) + (k * k + 3);
        i := i + 1
    end;
    pl0ack := s
end;

write pl0ack(5).
`

func pl0ackRef(k int64) int64 {
	var ack func(m, n int64) int64
	ack = func(m, n int64) int64 {
		switch {
		case m == 0:
			return n + 1
		case n == 0:
			return ack(m-1, 1)
		default:
			return ack(m-1, ack(m, n-1))
		}
	}
	var s int64
	for i := int64(1); i <= k; i++ {
		s += ack(1, i) + ack(2, i) + (k*k + 3)
	}
	return s
}

// ---------------------------------------------------------------------
// pl0nest — nested procedure with up-level addressing.  The captured
// locals live in static memory, so every access in the inner loop is
// an address materialization plus a load or store; PRE hoists the
// invariant address arithmetic out of the loop.
// ---------------------------------------------------------------------

const pl0nestSrc = `
procedure pl0nest(n);
var total, i;
    procedure bump(k);
    var j;
    begin
        j := 0;
        while j < k do begin
            total := total + i * i + j;
            j := j + 1
        end
    end;
begin
    total := 0;
    i := 1;
    while i <= n do begin
        call bump(3);
        i := i + 1
    end;
    pl0nest := total
end;

write pl0nest(25).
`

func pl0nestRef(n int64) int64 {
	var total int64
	for i := int64(1); i <= n; i++ {
		for j := int64(0); j < 3; j++ {
			total += i*i + j
		}
	}
	return total
}

// ---------------------------------------------------------------------
// pl0chain — a depth-four call chain fanning out 2^3 leaf calls per
// driver iteration: the call-density silhouette, where code motion
// must stop at every call site.
// ---------------------------------------------------------------------

const pl0chainSrc = `
procedure s1(x);
    s1 := x + x * 3;

procedure s2(x);
    s2 := s1(x) + s1(x + 1) + x * 5;

procedure s3(x);
    s3 := s2(x) + s2(x + 1) - x;

procedure s4(x);
    s4 := s3(x) + s3(x + 1);

procedure pl0chain(n);
var i, t;
begin
    t := 0;
    i := 1;
    while i <= n do begin
        t := t + s4(i) + (n * 2 - 3);
        i := i + 1
    end;
    pl0chain := t
end;

write pl0chain(15).
`

func pl0chainRef(n int64) int64 {
	s1 := func(x int64) int64 { return x + x*3 }
	s2 := func(x int64) int64 { return s1(x) + s1(x+1) + x*5 }
	s3 := func(x int64) int64 { return s2(x) + s2(x+1) - x }
	s4 := func(x int64) int64 { return s3(x) + s3(x+1) }
	var t int64
	for i := int64(1); i <= n; i++ {
		t += s4(i) + (n*2 - 3)
	}
	return t
}

// ---------------------------------------------------------------------
// pl0sieve — Eratosthenes over a flag array.  The naive subscript
// lowering rebuilds base/(i-1)*8 chains at every flags[i] touch; the
// loop-invariant parts are PRE's to hoist.
// ---------------------------------------------------------------------

const pl0sieveSrc = `
procedure pl0sieve(n);
var flags[400], i, j, count;
begin
    count := 0;
    i := 2;
    while i <= n do begin
        if flags[i] = 0 then begin
            count := count + 1;
            j := i + i;
            while j <= n do begin
                flags[j] := 1;
                j := j + i
            end
        end;
        i := i + 1
    end;
    pl0sieve := count
end;

write pl0sieve(100).
`

func pl0sieveRef(n int64) int64 {
	flags := make([]bool, n+1)
	var count int64
	for i := int64(2); i <= n; i++ {
		if !flags[i] {
			count++
			for j := i + i; j <= n; j += i {
				flags[j] = true
			}
		}
	}
	return count
}

// ---------------------------------------------------------------------
// pl0matmul — matrix multiply over linearized 1-based arrays: the
// paper's §3.1 shape verbatim.  Every a[(i-1)*n+k] reference rebuilds
// the full row-offset chain; reassociation exposes (i-1)*n as
// loop-invariant to the k loop so PRE can hoist it, which plain PRE
// on the unreassociated chain cannot.
// ---------------------------------------------------------------------

const pl0matmulSrc = `
procedure pl0matmul(n);
var a[36], b[36], c[36], i, j, k, s;
begin
    i := 1;
    while i <= n do begin
        j := 1;
        while j <= n do begin
            a[(i - 1) * n + j] := i * 3 + j;
            b[(i - 1) * n + j] := i - j * 2;
            j := j + 1
        end;
        i := i + 1
    end;
    i := 1;
    while i <= n do begin
        j := 1;
        while j <= n do begin
            s := 0;
            k := 1;
            while k <= n do begin
                s := s + a[(i - 1) * n + k] * b[(k - 1) * n + j];
                k := k + 1
            end;
            c[(i - 1) * n + j] := s;
            j := j + 1
        end;
        i := i + 1
    end;
    s := 0;
    i := 1;
    while i <= n * n do begin
        s := s + c[i];
        i := i + 1
    end;
    pl0matmul := s
end;

write pl0matmul(6).
`

func pl0matmulRef(n int64) int64 {
	a := make([]int64, n*n+1)
	b := make([]int64, n*n+1)
	c := make([]int64, n*n+1)
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			a[(i-1)*n+j] = i*3 + j
			b[(i-1)*n+j] = i - j*2
		}
	}
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			var s int64
			for k := int64(1); k <= n; k++ {
				s += a[(i-1)*n+k] * b[(k-1)*n+j]
			}
			c[(i-1)*n+j] = s
		}
	}
	var s int64
	for i := int64(1); i <= n*n; i++ {
		s += c[i]
	}
	return s
}

// ---------------------------------------------------------------------
// pl0stencil — 1-D three-point relaxation: a[i-1] this iteration is
// a[i] of the previous one, the classic partially redundant load that
// PRE turns into a rotating value.
// ---------------------------------------------------------------------

const pl0stencilSrc = `
procedure pl0stencil(n);
var a[130], b[130], i, t, s;
begin
    i := 1;
    while i <= n do begin
        a[i] := i * i - n;
        i := i + 1
    end;
    t := 1;
    while t <= 4 do begin
        i := 2;
        while i < n do begin
            b[i] := a[i - 1] + a[i] * 2 + a[i + 1];
            i := i + 1
        end;
        i := 2;
        while i < n do begin
            a[i] := b[i] - a[i] / 3;
            i := i + 1
        end;
        t := t + 1
    end;
    s := 0;
    i := 1;
    while i <= n do begin
        s := s + a[i];
        i := i + 1
    end;
    pl0stencil := s
end;

write pl0stencil(100).
`

func pl0stencilRef(n int64) int64 {
	a := make([]int64, n+2)
	b := make([]int64, n+2)
	for i := int64(1); i <= n; i++ {
		a[i] = i*i - n
	}
	for t := 0; t < 4; t++ {
		for i := int64(2); i < n; i++ {
			b[i] = a[i-1] + a[i]*2 + a[i+1]
		}
		for i := int64(2); i < n; i++ {
			a[i] = b[i] - a[i]/3
		}
	}
	var s int64
	for i := int64(1); i <= n; i++ {
		s += a[i]
	}
	return s
}

// ---------------------------------------------------------------------
// pl0sort — bubble sort plus weighted checksum: a[j] and a[j+1] are
// each loaded for the comparison and again for the swap, and the
// inner bound n-i is invariant there — redundancy at every level.
// ---------------------------------------------------------------------

const pl0sortSrc = `
procedure pl0sort(n);
var a[64], i, j, t, s;
begin
    i := 1;
    while i <= n do begin
        a[i] := (i * 37 + 11) - (i * 37 + 11) / 13 * 13;
        i := i + 1
    end;
    i := 1;
    while i < n do begin
        j := 1;
        while j <= n - i do begin
            if a[j] > a[j + 1] then begin
                t := a[j];
                a[j] := a[j + 1];
                a[j + 1] := t
            end;
            j := j + 1
        end;
        i := i + 1
    end;
    s := 0;
    i := 1;
    while i <= n do begin
        s := s + a[i] * i;
        i := i + 1
    end;
    pl0sort := s
end;

write pl0sort(40).
`

func pl0sortRef(n int64) int64 {
	a := make([]int64, n+1)
	for i := int64(1); i <= n; i++ {
		v := i*37 + 11
		a[i] = v - v/13*13
	}
	for i := int64(1); i < n; i++ {
		for j := int64(1); j <= n-i; j++ {
			if a[j] > a[j+1] {
				a[j], a[j+1] = a[j+1], a[j]
			}
		}
	}
	var s int64
	for i := int64(1); i <= n; i++ {
		s += a[i] * i
	}
	return s
}

func init() {
	register(Routine{
		Name: "pl0gcd", Note: "PL/0 subtraction-form Euclid under a driver loop",
		Source: pl0gcdSrc, Driver: "pl0gcd",
		Args:   []interp.Value{interp.IntVal(40)},
		RefInt: intRef(pl0gcdRef(40)),
	})
	register(Routine{
		Name: "pl0ack", Note: "PL/0 Ackermann recursion under a driver loop",
		Source: pl0ackSrc, Driver: "pl0ack",
		Args:   []interp.Value{interp.IntVal(5)},
		RefInt: intRef(pl0ackRef(5)),
	})
	register(Routine{
		Name: "pl0nest", Note: "PL/0 nested procedure with up-level (captured) addressing",
		Source: pl0nestSrc, Driver: "pl0nest",
		Args:   []interp.Value{interp.IntVal(25)},
		RefInt: intRef(pl0nestRef(25)),
	})
	register(Routine{
		Name: "pl0chain", Note: "PL/0 depth-four call chain, 8 leaf calls per iteration",
		Source: pl0chainSrc, Driver: "pl0chain",
		Args:   []interp.Value{interp.IntVal(15)},
		RefInt: intRef(pl0chainRef(15)),
	})
	register(Routine{
		Name: "pl0sieve", Note: "PL/0 sieve of Eratosthenes over a flag array",
		Source: pl0sieveSrc, Driver: "pl0sieve",
		Args:   []interp.Value{interp.IntVal(100)},
		RefInt: intRef(pl0sieveRef(100)),
	})
	register(Routine{
		Name: "pl0matmul", Note: "PL/0 linearized matrix multiply (the §3.1 address shape)",
		Source: pl0matmulSrc, Driver: "pl0matmul",
		Args:   []interp.Value{interp.IntVal(6)},
		RefInt: intRef(pl0matmulRef(6)),
	})
	register(Routine{
		Name: "pl0stencil", Note: "PL/0 three-point relaxation, partially redundant loads",
		Source: pl0stencilSrc, Driver: "pl0stencil",
		Args:   []interp.Value{interp.IntVal(100)},
		RefInt: intRef(pl0stencilRef(100)),
	})
	register(Routine{
		Name: "pl0sort", Note: "PL/0 bubble sort with weighted checksum",
		Source: pl0sortSrc, Driver: "pl0sort",
		Args:   []interp.Value{interp.IntVal(40)},
		RefInt: intRef(pl0sortRef(40)),
	})
}
