package suite

import "repro/internal/interp"

// More SPEC'89-style kernels (doduc and friends).  Each reproduces the
// characteristic loop idiom behind its Table 1 namesake; the original
// FORTRAN is not available, so the algorithms are reconstructed from
// the routines' published roles (reactor-kinetics time stepping, flux
// limiting, interpolation tables, boundary sweeps).

// ---------------------------------------------------------------------
// bilan — coupled energy-balance recurrences (Table 1 row "bilan"):
// several mutually referencing FP accumulators with divisions.
// ---------------------------------------------------------------------

const bilanSrc = `
func driver(n: int): real {
    var e: real = 1.0
    var p: real = 0.5
    var q: real = 0.25
    for i = 1 to n {
        var de: real = (p - q) / (real(i) + 1.0)
        var dp: real = (e + q) / (real(i) + 2.0)
        var dq: real = (e - p) / (real(i) + 3.0)
        e = e + de * 0.5
        p = p + dp * 0.5
        q = q + dq * 0.5
    }
    return e + p * 10.0 + q * 100.0
}
`

func bilanRef(n int) float64 {
	e, p, q := 1.0, 0.5, 0.25
	for i := 1; i <= n; i++ {
		de := (p - q) / (float64(i) + 1.0)
		dp := (e + q) / (float64(i) + 2.0)
		dq := (e - p) / (float64(i) + 3.0)
		e += de * 0.5
		p += dp * 0.5
		q += dq * 0.5
	}
	return e + p*10.0 + q*100.0
}

// ---------------------------------------------------------------------
// cardeb — mixed integer/floating kernel with conditionals (Table 1
// row "cardeb"): per-element classification and weighted accumulation.
// ---------------------------------------------------------------------

const cardebSrc = `
func driver(n: int): real {
    var x: [128]real
    for i = 1 to n {
        x[i] = real(i % 13) - 6.0
    }
    var pos: real = 0.0
    var neg: real = 0.0
    var zc: int = 0
    for i = 1 to n {
        if x[i] > 0.0 {
            pos = pos + x[i] * x[i]
        } else if x[i] < 0.0 {
            neg = neg - x[i]
        } else {
            zc = zc + 1
        }
    }
    return pos + neg * 2.0 + real(zc) * 100.0
}
`

func cardebRef(n int) float64 {
	pos, neg := 0.0, 0.0
	zc := 0
	for i := 1; i <= n; i++ {
		x := float64(i%13) - 6.0
		switch {
		case x > 0:
			pos += x * x
		case x < 0:
			neg -= x
		default:
			zc++
		}
	}
	return pos + neg*2.0 + float64(zc)*100.0
}

// ---------------------------------------------------------------------
// debico — Newton divided-difference interpolation table (Table 1 row
// "debico"): triangular table construction with nested subscripts.
// ---------------------------------------------------------------------

const debicoSrc = `
func driver(n: int): real {
    var x: [32]real
    var d: [32,32]real
    for i = 1 to n {
        x[i] = real(i) / 3.0
        d[i,1] = x[i] * x[i] - 2.0 * x[i]
    }
    for j = 2 to n {
        for i = 1 to n - j + 1 {
            d[i,j] = (d[i+1,j-1] - d[i,j-1]) / (x[i+j-1] - x[i])
        }
    }
    var s: real = 0.0
    for j = 1 to n {
        s = s + d[1,j]
    }
    return s
}
`

func debicoRef(n int) float64 {
	x := make([]float64, n+2)
	d := make([][]float64, n+2)
	for i := range d {
		d[i] = make([]float64, n+2)
	}
	for i := 1; i <= n; i++ {
		x[i] = float64(i) / 3.0
		d[i][1] = x[i]*x[i] - 2.0*x[i]
	}
	for j := 2; j <= n; j++ {
		for i := 1; i <= n-j+1; i++ {
			d[i][j] = (d[i+1][j-1] - d[i][j-1]) / (x[i+j-1] - x[i])
		}
	}
	s := 0.0
	for j := 1; j <= n; j++ {
		s += d[1][j]
	}
	return s
}

// ---------------------------------------------------------------------
// debflu — flux computation with min/max limiting (Table 1 row
// "debflu"): neighbor differences clamped by fmin/fmax.
// ---------------------------------------------------------------------

const debfluSrc = `
func driver(n: int): real {
    var u: [128]real
    var f: [128]real
    for i = 1 to n {
        u[i] = real((i * 7) % 23) - 11.0
    }
    for i = 2 to n - 1 {
        var dl: real = u[i] - u[i-1]
        var dr: real = u[i+1] - u[i]
        var lim: real = min(abs(dl), abs(dr))
        if dl * dr <= 0.0 {
            lim = 0.0
        }
        f[i] = u[i] + 0.5 * lim
    }
    var s: real = 0.0
    for i = 2 to n - 1 {
        s = s + f[i]
    }
    return s
}
`

func debfluRef(n int) float64 {
	u := make([]float64, n+2)
	f := make([]float64, n+2)
	for i := 1; i <= n; i++ {
		u[i] = float64((i*7)%23) - 11.0
	}
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	for i := 2; i <= n-1; i++ {
		dl := u[i] - u[i-1]
		dr := u[i+1] - u[i]
		lim := min(abs(dl), abs(dr))
		if dl*dr <= 0 {
			lim = 0
		}
		f[i] = u[i] + 0.5*lim
	}
	s := 0.0
	for i := 2; i <= n-1; i++ {
		s += f[i]
	}
	return s
}

// ---------------------------------------------------------------------
// drepvi — conditional strided copy (Table 1 row "drepvi").
// ---------------------------------------------------------------------

const drepviSrc = `
func driver(n: int): int {
    var a: [256]int
    var b: [256]int
    for i = 1 to n {
        a[i] = (i * 31) % 17
        b[i] = 0
    }
    var k: int = 1
    for i = 1 to n {
        if a[i] % 2 == 0 {
            b[k] = a[i] * 3 + 1
            k = k + 2
        }
    }
    var s: int = 0
    for i = 1 to n {
        s = s + b[i] * i
    }
    return s
}
`

func drepviRef(n int) int64 {
	a := make([]int64, n+1)
	b := make([]int64, 2*n+4)
	for i := 1; i <= n; i++ {
		a[i] = int64((i * 31) % 17)
	}
	k := 1
	for i := 1; i <= n; i++ {
		if a[i]%2 == 0 {
			b[k] = a[i]*3 + 1
			k += 2
		}
	}
	var s int64
	for i := 1; i <= n; i++ {
		s += b[i] * int64(i)
	}
	return s
}

// ---------------------------------------------------------------------
// orgpar — parameter organization: reductions (min, max, mean)
// (Table 1 row "orgpar").
// ---------------------------------------------------------------------

const orgparSrc = `
func driver(n: int): real {
    var x: [128]real
    for i = 1 to n {
        x[i] = real((i * 11) % 29) / 3.0 - 4.0
    }
    var lo: real = x[1]
    var hi: real = x[1]
    var sum: real = 0.0
    for i = 1 to n {
        lo = min(lo, x[i])
        hi = max(hi, x[i])
        sum = sum + x[i]
    }
    return (hi - lo) * 100.0 + sum / real(n)
}
`

func orgparRef(n int) float64 {
	x := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		x[i] = float64((i*11)%29)/3.0 - 4.0
	}
	lo, hi, sum := x[1], x[1], 0.0
	for i := 1; i <= n; i++ {
		lo = min(lo, x[i])
		hi = max(hi, x[i])
		sum += x[i]
	}
	return (hi-lo)*100.0 + sum/float64(n)
}

// ---------------------------------------------------------------------
// pastem — predictor–corrector time stepping (Table 1 row "pastem").
// ---------------------------------------------------------------------

const pastemSrc = `
func rate(y: real, t: real): real {
    return 0.0 - y * 0.5 + t * 0.125
}

func driver(steps: int): real {
    var y: real = 2.0
    var t: real = 0.0
    var h: real = 0.1
    for s = 1 to steps {
        var fp: real = rate(y, t)
        var yp: real = y + h * fp
        var fc: real = rate(yp, t + h)
        y = y + h * (fp + fc) / 2.0
        t = t + h
    }
    return y
}
`

func pastemRef(steps int) float64 {
	rate := func(y, t float64) float64 { return 0.0 - y*0.5 + t*0.125 }
	y, t, h := 2.0, 0.0, 0.1
	for s := 0; s < steps; s++ {
		fp := rate(y, t)
		yp := y + h*fp
		fc := rate(yp, t+h)
		y = y + h*(fp+fc)/2.0
		t = t + h
	}
	return y
}

// ---------------------------------------------------------------------
// paroi — wall boundary sweep with edge conditionals (Table 1 row
// "paroi").
// ---------------------------------------------------------------------

const paroiSrc = `
func driver(n: int): real {
    var w: [128]real
    for i = 1 to n {
        w[i] = real(i) * 0.25
    }
    for i = 1 to n {
        if i == 1 {
            w[i] = w[i+1] * 2.0
        } else if i == n {
            w[i] = w[i-1] * 2.0
        } else {
            w[i] = (w[i-1] + w[i+1]) * 0.5 + w[i] * 0.1
        }
    }
    var s: real = 0.0
    for i = 1 to n {
        s = s + w[i]
    }
    return s
}
`

func paroiRef(n int) float64 {
	w := make([]float64, n+2)
	for i := 1; i <= n; i++ {
		w[i] = float64(i) * 0.25
	}
	for i := 1; i <= n; i++ {
		switch {
		case i == 1:
			w[i] = w[i+1] * 2.0
		case i == n:
			w[i] = w[i-1] * 2.0
		default:
			w[i] = (w[i-1]+w[i+1])*0.5 + w[i]*0.1
		}
	}
	s := 0.0
	for i := 1; i <= n; i++ {
		s += w[i]
	}
	return s
}

// ---------------------------------------------------------------------
// inithx — mesh-table initialization: products of both indices
// (Table 1 row "inithx").
// ---------------------------------------------------------------------

const inithxSrc = `
func driver(n: int): real {
    var h: [20,20]real
    for j = 1 to n {
        for i = 1 to n {
            h[i,j] = real(i * j) / real(i + j) + real(i - j) * 0.125
        }
    }
    var s: real = 0.0
    for j = 1 to n {
        for i = 1 to n {
            s = s + h[i,j] / real(j)
        }
    }
    return s
}
`

func inithxRef(n int) float64 {
	h := make([][]float64, n+1)
	for i := range h {
		h[i] = make([]float64, n+1)
	}
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			h[i][j] = float64(i*j)/float64(i+j) + float64(i-j)*0.125
		}
	}
	s := 0.0
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			s += h[i][j] / float64(j)
		}
	}
	return s
}

// ---------------------------------------------------------------------
// yeh — sliding-window filter (Table 1 row "yeh").
// ---------------------------------------------------------------------

const yehSrc = `
func driver(n: int): real {
    var x: [160]real
    var y: [160]real
    for i = 1 to n {
        x[i] = real((i * 3) % 11) - 5.0
    }
    for i = 4 to n {
        y[i] = (x[i] + x[i-1] + x[i-2] + x[i-3]) / 4.0
    }
    var s: real = 0.0
    for i = 4 to n {
        s = s + y[i] * real(i)
    }
    return s
}
`

func yehRef(n int) float64 {
	x := make([]float64, n+1)
	y := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		x[i] = float64((i*3)%11) - 5.0
	}
	for i := 4; i <= n; i++ {
		y[i] = (x[i] + x[i-1] + x[i-2] + x[i-3]) / 4.0
	}
	s := 0.0
	for i := 4; i <= n; i++ {
		s += y[i] * float64(i)
	}
	return s
}

// ---------------------------------------------------------------------
// coeray — paired re/im coefficient arithmetic (Table 1 row "coeray"):
// complex multiply-accumulate over parallel arrays.
// ---------------------------------------------------------------------

const coeraySrc = `
func driver(n: int): real {
    var re: [64]real
    var im: [64]real
    for i = 1 to n {
        re[i] = real(i) / 7.0
        im[i] = real(n - i) / 5.0
    }
    var ar: real = 1.0
    var ai: real = 0.0
    for i = 1 to n {
        var nr: real = ar * re[i] - ai * im[i]
        var ni: real = ar * im[i] + ai * re[i]
        ar = nr / (1.0 + real(i) * 0.5)
        ai = ni / (1.0 + real(i) * 0.5)
    }
    return ar * 1000.0 + ai
}
`

func coerayRef(n int) float64 {
	re := make([]float64, n+1)
	im := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		re[i] = float64(i) / 7.0
		im[i] = float64(n-i) / 5.0
	}
	ar, ai := 1.0, 0.0
	for i := 1; i <= n; i++ {
		nr := ar*re[i] - ai*im[i]
		ni := ar*im[i] + ai*re[i]
		ar = nr / (1.0 + float64(i)*0.5)
		ai = ni / (1.0 + float64(i)*0.5)
	}
	return ar*1000.0 + ai
}

// ---------------------------------------------------------------------
// si — series evaluation with a factorial-style recurrence (Table 1
// row "si"): term(k) computed incrementally, alternating signs.
// ---------------------------------------------------------------------

const siSrc = `
func driver(terms: int): real {
    var x: real = 1.5
    var term: real = x
    var s: real = x
    var sign: real = -1.0
    for k = 1 to terms {
        var tk: real = real(2 * k) * real(2 * k + 1)
        term = term * x * x / tk
        s = s + sign * term / real(2 * k + 1)
        sign = 0.0 - sign
    }
    return s
}
`

func siRef(terms int) float64 {
	x := 1.5
	term := x
	s := x
	sign := -1.0
	for k := 1; k <= terms; k++ {
		tk := float64(2*k) * float64(2*k+1)
		term = term * x * x / tk
		s += sign * term / float64(2*k+1)
		sign = -sign
	}
	return s
}

func init() {
	register(Routine{
		Name: "bilan", Note: "coupled FP recurrences with divisions (Table 1 'bilan')",
		Source: bilanSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(80)},
		RefFloat: floatRef(bilanRef(80)),
	})
	register(Routine{
		Name: "cardeb", Note: "classification + weighted accumulation (Table 1 'cardeb')",
		Source: cardebSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(120)},
		RefFloat: floatRef(cardebRef(120)),
	})
	register(Routine{
		Name: "debico", Note: "divided-difference interpolation table (Table 1 'debico')",
		Source: debicoSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(12)},
		RefFloat: floatRef(debicoRef(12)),
	})
	register(Routine{
		Name: "debflu", Note: "flux limiting with min/abs (Table 1 'debflu')",
		Source: debfluSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(100)},
		RefFloat: floatRef(debfluRef(100)),
	})
	register(Routine{
		Name: "drepvi", Note: "conditional strided copy (Table 1 'drepvi')",
		Source: drepviSrc, Driver: "driver",
		Args:   []interp.Value{interp.IntVal(100)},
		RefInt: intRef(drepviRef(100)),
	})
	register(Routine{
		Name: "orgpar", Note: "min/max/mean reductions (Table 1 'orgpar')",
		Source: orgparSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(100)},
		RefFloat: floatRef(orgparRef(100)),
	})
	register(Routine{
		Name: "pastem", Note: "predictor–corrector stepping (Table 1 'pastem')",
		Source: pastemSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(60)},
		RefFloat: floatRef(pastemRef(60)),
	})
	register(Routine{
		Name: "paroi", Note: "boundary sweep with edge conditionals (Table 1 'paroi')",
		Source: paroiSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(100)},
		RefFloat: floatRef(paroiRef(100)),
	})
	register(Routine{
		Name: "inithx", Note: "mesh-table init, index products (Table 1 'inithx')",
		Source: inithxSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(16)},
		RefFloat: floatRef(inithxRef(16)),
	})
	register(Routine{
		Name: "yeh", Note: "sliding-window filter (Table 1 'yeh')",
		Source: yehSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(150)},
		RefFloat: floatRef(yehRef(150)),
	})
	register(Routine{
		Name: "coeray", Note: "complex multiply-accumulate over re/im arrays (Table 1 'coeray')",
		Source: coeraySrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(50)},
		RefFloat: floatRef(coerayRef(50)),
	})
	register(Routine{
		Name: "si", Note: "series with factorial-style recurrence (Table 1 'si')",
		Source: siSrc, Driver: "driver",
		Args:     []interp.Value{interp.IntVal(20)},
		RefFloat: floatRef(siRef(20)),
	})
}
