// Package suite provides the benchmark workloads that regenerate the
// paper's Table 1 (dynamic operation counts at four optimization
// levels) and Table 2 (code expansion from forward propagation).
//
// The paper's test suite was "50 routines, drawn from the Spec
// benchmark suite and from Forsythe, Malcolm, and Moler's book on
// numerical methods".  Those FORTRAN sources are not available here,
// so each routine below re-implements the published algorithm (FMM
// kernels) or the characteristic loop idiom (SPEC-style kernels) in
// Mini-Fortran, preserving what matters to the paper's claims: naive
// front-end code shape, column-major 1-based array addressing,
// DO-loop nests, and the mix of integer address arithmetic with
// floating-point computation.  Routine names follow Table 1's rows
// where the idiom matches.
package suite

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minift"
)

// Routine is one benchmark workload: a Mini-Fortran program, the
// driver entry point, and a reference result for validation.
type Routine struct {
	Name   string
	Note   string // which paper routine/idiom this mirrors
	Source string
	Driver string
	Args   []interp.Value

	// Exactly one of RefInt/RefFloat is set.  Tol is the relative
	// tolerance for float results: reassociation legitimately changes
	// floating-point rounding, as FORTRAN's language rules permit.
	RefInt   *int64
	RefFloat *float64
	Tol      float64
}

// Compile translates the routine's source to IR.  Most routines are
// Mini-Fortran; routines whose source is already textual ILOC (the
// "gen" family, promoted from the differential fuzzer's random
// program generator) begin with the "program" keyword and are parsed
// directly.  All consumers must compile through this method rather
// than calling minift.Compile themselves so both families work.
func (r *Routine) Compile() (*ir.Program, error) {
	if r.Generated() {
		return ir.ParseProgramString(r.Source)
	}
	return minift.Compile(r.Source)
}

// Generated reports whether the routine is raw ILOC promoted from the
// fuzzer's program generator rather than Mini-Fortran.  Measurements
// calibrated against the paper's FORTRAN corpus (the analysis-cache
// reduction numbers) exclude generated routines; correctness gates
// (golden hashes, checked mode, Table 1/2) include them.
func (r *Routine) Generated() bool {
	return strings.HasPrefix(strings.TrimLeft(r.Source, " \t\r\n"), "program")
}

// Check validates an interpreted result against the reference.
func (r *Routine) Check(v interp.Value) error {
	switch {
	case r.RefInt != nil:
		if v.Float {
			return fmt.Errorf("%s: got float %v, want int %d", r.Name, v.F, *r.RefInt)
		}
		if v.I != *r.RefInt {
			return fmt.Errorf("%s: got %d, want %d", r.Name, v.I, *r.RefInt)
		}
	case r.RefFloat != nil:
		if !v.Float {
			return fmt.Errorf("%s: got int %v, want float %g", r.Name, v.I, *r.RefFloat)
		}
		want := *r.RefFloat
		tol := r.Tol
		if tol == 0 {
			tol = 1e-6
		}
		diff := math.Abs(v.F - want)
		scale := math.Max(math.Abs(want), 1)
		if diff > tol*scale || math.IsNaN(v.F) {
			return fmt.Errorf("%s: got %.12g, want %.12g (tol %g)", r.Name, v.F, want, tol)
		}
	default:
		return fmt.Errorf("%s: routine has no reference result", r.Name)
	}
	return nil
}

func intRef(v int64) *int64       { return &v }
func floatRef(v float64) *float64 { return &v }

// registry collects routines as the routine files register them.
var registry []Routine

func register(r Routine) { registry = append(registry, r) }

// All returns every suite routine, sorted by name.  The order is
// explicitly canonical (not registration or map order) so serial,
// parallel and cached consumers all iterate identically.
func All() []Routine {
	out := append([]Routine(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the named routine.
func ByName(name string) (Routine, bool) {
	for _, r := range registry {
		if r.Name == name {
			return r, true
		}
	}
	return Routine{}, false
}
