// Package suite provides the benchmark workloads that regenerate the
// paper's Table 1 (dynamic operation counts at four optimization
// levels) and Table 2 (code expansion from forward propagation).
//
// The paper's test suite was "50 routines, drawn from the Spec
// benchmark suite and from Forsythe, Malcolm, and Moler's book on
// numerical methods".  Those FORTRAN sources are not available here,
// so each routine below re-implements the published algorithm (FMM
// kernels) or the characteristic loop idiom (SPEC-style kernels) in
// Mini-Fortran, preserving what matters to the paper's claims: naive
// front-end code shape, column-major 1-based array addressing,
// DO-loop nests, and the mix of integer address arithmetic with
// floating-point computation.  Routine names follow Table 1's rows
// where the idiom matches.
package suite

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
)

// Routine is one benchmark workload: a source program (Mini-Fortran,
// PL/0, or raw ILOC), the driver entry point, and a reference result
// for validation.
type Routine struct {
	Name   string
	Note   string // which paper routine/idiom this mirrors
	Source string
	Driver string
	Args   []interp.Value

	// Exactly one of RefInt/RefFloat is set.  Tol is the relative
	// tolerance for float results: reassociation legitimately changes
	// floating-point rounding, as FORTRAN's language rules permit.
	RefInt   *int64
	RefFloat *float64
	Tol      float64
}

// Compile translates the routine's source to IR through the language
// registry: Mini-Fortran for most routines, PL/0 for the procedural
// family, and a raw ILOC parse for routines promoted from the
// differential fuzzer's random program generator.  All consumers must
// compile through this method rather than calling a front end
// directly so every family works.
func (r *Routine) Compile() (*ir.Program, error) {
	prog, _, err := lang.Compile(r.Source, "")
	return prog, err
}

// Lang reports the routine's canonical source language ("mf", "pl0",
// or "iloc" for generated routines); unrecognizable sources return "".
func (r *Routine) Lang() string {
	l, err := lang.Detect(r.Source)
	if err != nil {
		return ""
	}
	return l.Name
}

// Generated reports whether the routine is raw ILOC promoted from the
// fuzzer's program generator rather than a front-end language.
// Measurements calibrated against the paper's FORTRAN corpus (the
// analysis-cache reduction numbers) exclude generated routines;
// correctness gates (golden hashes, checked mode, Table 1/2) include
// them.
func (r *Routine) Generated() bool {
	return r.Lang() == "iloc"
}

// Check validates an interpreted result against the reference.
func (r *Routine) Check(v interp.Value) error {
	switch {
	case r.RefInt != nil:
		if v.Float {
			return fmt.Errorf("%s: got float %v, want int %d", r.Name, v.F, *r.RefInt)
		}
		if v.I != *r.RefInt {
			return fmt.Errorf("%s: got %d, want %d", r.Name, v.I, *r.RefInt)
		}
	case r.RefFloat != nil:
		if !v.Float {
			return fmt.Errorf("%s: got int %v, want float %g", r.Name, v.I, *r.RefFloat)
		}
		want := *r.RefFloat
		tol := r.Tol
		if tol == 0 {
			tol = 1e-6
		}
		diff := math.Abs(v.F - want)
		scale := math.Max(math.Abs(want), 1)
		if diff > tol*scale || math.IsNaN(v.F) {
			return fmt.Errorf("%s: got %.12g, want %.12g (tol %g)", r.Name, v.F, want, tol)
		}
	default:
		return fmt.Errorf("%s: routine has no reference result", r.Name)
	}
	return nil
}

func intRef(v int64) *int64       { return &v }
func floatRef(v float64) *float64 { return &v }

// registry collects routines as the routine files register them.
var registry []Routine

func register(r Routine) { registry = append(registry, r) }

// All returns every suite routine, sorted by name.  The order is
// explicitly canonical (not registration or map order) so serial,
// parallel and cached consumers all iterate identically.
func All() []Routine {
	out := append([]Routine(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the named routine.
func ByName(name string) (Routine, bool) {
	for _, r := range registry {
		if r.Name == name {
			return r, true
		}
	}
	return Routine{}, false
}
