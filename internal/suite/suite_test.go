package suite_test

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/suite"
)

// TestAllRoutinesAllLevels interprets every suite routine at every
// optimization level (plus unoptimized) and validates the result
// against the Go reference implementation.
func TestAllRoutinesAllLevels(t *testing.T) {
	levels := append([]core.Level{core.LevelNone}, core.Levels...)
	for _, r := range suite.All() {
		for _, level := range levels {
			if _, err := suite.RunRoutine(r, level); err != nil {
				t.Errorf("%s: %v", r.Name, err)
			}
		}
	}
}

// TestTable1Shape checks the paper's qualitative claims over the whole
// suite: PRE never loses to the baseline by more than noise, wins on
// average; reassociation+GVN adds improvement on average; occasional
// small per-routine regressions are expected (paper §4.2) but must
// stay small.
func TestTable1Shape(t *testing.T) {
	rows, err := suite.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 15 {
		t.Fatalf("suite too small: %d routines", len(rows))
	}
	var sumPartial, sumNew, sumTotal float64
	preWins := 0
	for _, r := range rows {
		sumPartial += r.PartialPct()
		sumNew += r.NewPct()
		sumTotal += r.TotalPct()
		if r.Partial < r.Baseline {
			preWins++
		}
		if r.TotalPct() < -10 {
			t.Errorf("%s: full pipeline regressed %0.f%% vs baseline (%d -> %d)",
				r.Name, -r.TotalPct(), r.Baseline, r.Dist)
		}
	}
	n := float64(len(rows))
	if sumPartial/n < 5 {
		t.Errorf("PRE should improve the baseline on average: got %.1f%%", sumPartial/n)
	}
	if sumNew/n < 1 {
		t.Errorf("reassociation+distribution+GVN should add improvement on average: got %.1f%%", sumNew/n)
	}
	if preWins < len(rows)*2/3 {
		t.Errorf("PRE should win on most routines: %d/%d", preWins, len(rows))
	}
	t.Logf("avg partial=%.1f%% avg new=%.1f%% avg total=%.1f%%", sumPartial/n, sumNew/n, sumTotal/n)
}

// TestTable2Expansion checks that forward propagation expands code by
// a factor comparable to the paper's Table 2 (1.0–2.5 per routine,
// ~1.27 in total).
func TestTable2Expansion(t *testing.T) {
	rows, err := suite.Table2()
	if err != nil {
		t.Fatal(err)
	}
	var tb, ta int
	for _, r := range rows {
		e := r.Expansion()
		if e < 0.5 || e > 4.0 {
			t.Errorf("%s: expansion %.3f outside the plausible band", r.Name, e)
		}
		tb += r.Before
		ta += r.After
	}
	total := float64(ta) / float64(tb)
	if total < 0.8 || total > 2.5 {
		t.Errorf("total expansion %.3f far from the paper's 1.269", total)
	}
	t.Logf("total expansion: %.3f (paper: 1.269)", total)
}

// TestWriteTables smoke-tests the formatting helpers.
func TestWriteTables(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows1, err := suite.Table1()
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := suite.Table2()
	if err != nil {
		t.Fatal(err)
	}
	suite.WriteTable1(os.Stderr, rows1)
	suite.WriteTable2(os.Stderr, rows2)
}
